"""Persistent evaluation cache: keys, durability, LRU, end-to-end reuse."""

import numpy as np
import pytest

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.logs.log import EventLog
from repro.obs import MetricsRegistry, Observer
from repro.runtime.evalcache import EvaluationCache, candidate_key, discovery_key


def _candidate_key(base="base", history=((0, ("a", "b")),), side=1,
                   run=("x", "y"), abort_below=0.25):
    return candidate_key(base, history, side, run, abort_below)


class TestKeys:
    def test_stable_across_calls(self):
        assert _candidate_key() == _candidate_key()

    def test_sensitive_to_every_component(self):
        assert _candidate_key(base="other") != _candidate_key()
        assert _candidate_key(history=()) != _candidate_key()
        assert _candidate_key(side=0) != _candidate_key()
        assert _candidate_key(run=("x", "z")) != _candidate_key()
        assert _candidate_key(abort_below=0.250001) != _candidate_key()

    def test_abort_below_round_trips_exactly(self):
        # repr() preserves the full float, so nearly-equal incumbents
        # that differ in the last ulp get distinct keys.
        value = 0.1 + 0.2
        assert _candidate_key(abort_below=value) == _candidate_key(
            abort_below=float(repr(value))
        )
        assert _candidate_key(abort_below=value) != _candidate_key(
            abort_below=0.3
        )

    def test_discovery_keys_disjoint_from_candidate_keys(self):
        assert discovery_key("base", (), 0) != discovery_key("base", (), 1)
        assert discovery_key("base", ((0, ("a", "b")),), 0) != discovery_key(
            "base", (), 0
        )
        assert discovery_key("base", (), 0) != _candidate_key(
            base="base", history=(), side=0
        )


class TestDurability:
    def _store(self, tmp_path, observer=None):
        cache = EvaluationCache(tmp_path, observer=observer)
        key = _candidate_key()
        cache.store(key, {"payload": [1, 2, 3]})
        return cache, key

    def test_round_trip(self, tmp_path):
        cache, key = self._store(tmp_path)
        assert cache.load(key) == {"payload": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_entry_is_silent_miss(self, tmp_path):
        observer = Observer(metrics=MetricsRegistry())
        cache = EvaluationCache(tmp_path, observer=observer)
        assert cache.load(_candidate_key()) is None
        text = observer.metrics.to_prometheus_text()
        assert "eval_cache_misses_total 1" in text
        # Absence is the normal first run, not corruption.
        assert "eval_cache_corrupt_total" not in text

    @pytest.mark.parametrize("mutilate", [
        lambda raw: raw[: len(raw) // 2],                      # torn write
        lambda raw: raw.replace(b"EMSEVAL1", b"EMSEVAL9", 1),  # version bump
        lambda raw: bytes(reversed(raw)),                      # garbage
    ])
    def test_mutilated_entry_degrades_to_cold(self, tmp_path, mutilate, caplog):
        observer = Observer(metrics=MetricsRegistry())
        cache, key = self._store(tmp_path, observer)
        path = cache.path_for(key)
        path.write_bytes(mutilate(path.read_bytes()))
        with caplog.at_level("WARNING"):
            assert cache.load(key) is None
        assert any("evaluating cold" in r.message for r in caplog.records)
        text = observer.metrics.to_prometheus_text()
        assert "eval_cache_corrupt_total 1" in text
        assert "eval_cache_misses_total 1" in text
        # The bad entry was removed so it cannot trip future runs.
        assert not path.exists()

    def test_payload_bit_flip_detected_by_digest(self, tmp_path):
        cache, key = self._store(tmp_path)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.load(key) is None

    def test_key_mismatch_never_serves_foreign_entry(self, tmp_path):
        import os

        cache, key = self._store(tmp_path)
        other = _candidate_key(abort_below=0.5)
        os.replace(cache.path_for(key), cache.path_for(other))
        assert cache.load(other) is None

    def test_store_leaves_no_tmp_litter(self, tmp_path):
        cache, key = self._store(tmp_path)
        cache.store(key, {"payload": [4]})  # overwrite
        assert [p.name for p in tmp_path.iterdir()] == [cache.path_for(key).name]
        assert cache.load(key) == {"payload": [4]}


class TestEviction:
    def test_lru_bound_drops_oldest(self, tmp_path):
        import os

        observer = Observer(metrics=MetricsRegistry())
        cache = EvaluationCache(tmp_path, max_entries=2, observer=observer)
        keys = [_candidate_key(abort_below=float(i)) for i in range(3)]
        for i, key in enumerate(keys):
            cache.store(key, i)
            # Distinct mtimes even on coarse filesystem clocks.
            os.utime(cache.path_for(key), (i, i))
        assert cache.load(keys[0]) is None  # evicted
        assert cache.load(keys[1]) == 1
        assert cache.load(keys[2]) == 2
        assert "eval_cache_evictions_total 1" in observer.metrics.to_prometheus_text()

    def test_load_touches_entry_for_lru(self, tmp_path):
        import os

        cache = EvaluationCache(tmp_path, max_entries=2)
        keys = [_candidate_key(abort_below=float(i)) for i in range(3)]
        cache.store(keys[0], 0)
        cache.store(keys[1], 1)
        for i, key in enumerate(keys[:2]):
            os.utime(cache.path_for(key), (i, i))
        cache.load(keys[0])  # refresh: now keys[1] is the LRU entry
        cache.store(keys[2], 2)
        assert cache.load(keys[1]) is None
        assert cache.load(keys[0]) == 0

    def test_max_entries_validation(self, tmp_path):
        with pytest.raises(ValueError):
            EvaluationCache(tmp_path, max_entries=0)
        EvaluationCache(tmp_path, max_entries=None)  # unbounded is fine


def _toy_logs():
    first = EventLog([["a", "b", "c"], ["a", "c", "b"], ["b", "a", "c"]] * 4,
                     name="first")
    second = EventLog(
        [["x", "y", "z", "w"], ["x", "y", "w", "z"], ["z", "x", "y", "w"]] * 4,
        name="second",
    )
    return first, second


class TestEndToEnd:
    def test_warm_run_bit_identical_and_all_hits(self, tmp_path):
        first, second = _toy_logs()
        config = EMSConfig(incremental=True, screening=True)
        cache = EvaluationCache(tmp_path)

        def run(with_cache):
            matcher = CompositeMatcher(
                config, delta=0.0, min_confidence=0.6, max_run_length=3,
                eval_cache=cache if with_cache else None,
            )
            return matcher.match(first, second)

        cold = run(True)
        misses = cache.misses
        assert misses > 0 and cache.hits == 0
        warm = run(True)
        assert cache.hits == misses  # every evaluation + discovery reused
        assert cache.misses == misses
        uncached = run(False)
        for other in (warm, uncached):
            assert other.accepted_first == cold.accepted_first
            assert other.accepted_second == cold.accepted_second
            assert np.array_equal(other.matrix.values, cold.matrix.values)
            assert other.stats.candidates_evaluated == cold.stats.candidates_evaluated
            assert other.stats.pairs_fixed == cold.stats.pairs_fixed

    def test_corrupted_store_degrades_to_cold_search(self, tmp_path):
        first, second = _toy_logs()
        config = EMSConfig(incremental=True, screening=True)
        cache = EvaluationCache(tmp_path)
        matcher = CompositeMatcher(
            config, delta=0.0, min_confidence=0.6, max_run_length=3,
            eval_cache=cache,
        )
        cold = matcher.match(first, second)
        for path in tmp_path.glob("eval-*.pkl"):
            path.write_bytes(b"EMSEVAL9 junk junk\ngarbage")
        rerun = CompositeMatcher(
            config, delta=0.0, min_confidence=0.6, max_run_length=3,
            eval_cache=cache,
        ).match(first, second)
        assert rerun.accepted_second == cold.accepted_second
        assert np.array_equal(rerun.matrix.values, cold.matrix.values)
        assert cache.hits == 0  # nothing served from the mutilated store
