"""Shared fixtures for the fault-injection suite."""

from pathlib import Path

import pytest

from repro.logs.csvio import read_csv
from repro.logs.log import EventLog

CORPUS = Path(__file__).parent / "corpus"

ON_ERROR_MODES = ("raise", "skip", "repair")


@pytest.fixture()
def corpus() -> Path:
    return CORPUS


@pytest.fixture()
def adversarial_pair() -> tuple[EventLog, EventLog]:
    """Two dense, loopy logs whose matching needs real iteration work."""
    first = read_csv(CORPUS / "adversarial_a.csv", name="adv-a")
    second = read_csv(CORPUS / "adversarial_b.csv", name="adv-b")
    return first, second


@pytest.fixture()
def wide_pair() -> tuple[EventLog, EventLog]:
    """Logs with four always-adjacent runs on one side.

    Every greedy round discovers several candidates, so ``workers > 1``
    actually engages the supervised pool (fig1 yields a single candidate
    per round and falls back to the serial path), and with a small delta
    (0.001) the search accepts four merges over five rounds — enough
    trajectory for checkpoint/resume and fault-injection tests.
    """
    first = EventLog(
        [
            ["A1", "A2", "B1", "B2", "C1", "C2", "D1", "D2"],
            ["B1", "B2", "A1", "A2", "D1", "D2", "C1", "C2"],
            ["C1", "C2", "D1", "D2", "B1", "B2", "A1", "A2"],
            ["D1", "D2", "C1", "C2", "A1", "A2", "B1", "B2"],
        ],
        name="wide-a",
    )
    second = EventLog(
        [
            ["A", "B", "C", "D"],
            ["B", "A", "D", "C"],
            ["C", "D", "B", "A"],
            ["D", "C", "A", "B"],
        ],
        name="wide-b",
    )
    return first, second


@pytest.fixture()
def small_pair() -> tuple[EventLog, EventLog]:
    first = EventLog(
        [["a", "b", "c", "d"]] * 5 + [["a", "c", "b", "d"]] * 3, name="small-a"
    )
    second = EventLog(
        [["w", "x", "y", "z"]] * 5 + [["w", "y", "x", "z"]] * 3, name="small-b"
    )
    return first, second
