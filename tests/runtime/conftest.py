"""Shared fixtures for the fault-injection suite."""

from pathlib import Path

import pytest

from repro.logs.csvio import read_csv
from repro.logs.log import EventLog

CORPUS = Path(__file__).parent / "corpus"

ON_ERROR_MODES = ("raise", "skip", "repair")


@pytest.fixture()
def corpus() -> Path:
    return CORPUS


@pytest.fixture()
def adversarial_pair() -> tuple[EventLog, EventLog]:
    """Two dense, loopy logs whose matching needs real iteration work."""
    first = read_csv(CORPUS / "adversarial_a.csv", name="adv-a")
    second = read_csv(CORPUS / "adversarial_b.csv", name="adv-b")
    return first, second


@pytest.fixture()
def small_pair() -> tuple[EventLog, EventLog]:
    first = EventLog(
        [["a", "b", "c", "d"]] * 5 + [["a", "c", "b", "d"]] * 3, name="small-a"
    )
    second = EventLog(
        [["w", "x", "y", "z"]] * 5 + [["w", "y", "x", "z"]] * 3, name="small-b"
    )
    return first, second
