"""Unit tests of the deterministic fault-injection harness."""

import pytest

from repro.runtime.faults import (
    CRASH_EXIT_STATUS,
    KIND_CORRUPT,
    KIND_INTERRUPT,
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    TransientFault,
)


class TestFaultSpec:
    def test_exact_coordinates_match(self):
        spec = FaultSpec(site="evaluate", kind="transient", round=2,
                         side=1, run=("a", "b"), attempts=(1,))
        assert spec.matches("evaluate", round=2, side=1, run=("a", "b"), attempt=1)
        assert not spec.matches("evaluate", round=3, side=1, run=("a", "b"), attempt=1)
        assert not spec.matches("evaluate", round=2, side=0, run=("a", "b"), attempt=1)
        assert not spec.matches("evaluate", round=2, side=1, run=("a", "c"), attempt=1)
        assert not spec.matches("evaluate", round=2, side=1, run=("a", "b"), attempt=2)
        assert not spec.matches("checkpoint.write", round=2)

    def test_none_coordinates_are_wildcards(self):
        spec = FaultSpec(site="evaluate", kind="transient")
        assert spec.matches("evaluate", round=7, side=0, run=("x",), attempt=1)

    def test_empty_attempts_is_every_attempt(self):
        spec = FaultSpec(site="evaluate", kind="transient", attempts=())
        for attempt in (1, 2, 3, 17):
            assert spec.matches("evaluate", attempt=attempt)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="evaluate", kind="meltdown")


class TestFaultPlan:
    def test_no_faults_is_falsy_and_never_matches(self):
        assert not NO_FAULTS
        assert NO_FAULTS.match("evaluate", round=1) is None
        assert NO_FAULTS.fire("evaluate", round=1) is None

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="interrupt", round=1),
            FaultSpec(site="evaluate", kind="corrupt", round=1),
        ))
        assert plan.match("evaluate", round=1).kind == KIND_INTERRUPT

    def test_transient_fires_anywhere(self):
        plan = FaultPlan(specs=(FaultSpec(site="evaluate", kind="transient"),))
        with pytest.raises(TransientFault):
            plan.fire("evaluate", round=1)
        with pytest.raises(TransientFault):
            plan.fire("evaluate", in_worker=True, round=1)

    def test_crash_not_acted_in_parent(self):
        # A crash spec outside a worker must NOT kill the test process;
        # the spec is still returned so callers can log it.
        plan = FaultPlan(specs=(FaultSpec(site="evaluate", kind="crash"),))
        spec = plan.fire("evaluate", round=1)
        assert spec.kind == "crash"

    def test_timeout_delay_injected_via_sleep(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="timeout", delay=12.5),
        ))
        slept = []
        plan.fire("evaluate", in_worker=True, sleep=slept.append)
        assert slept == [12.5]

    def test_interrupt_and_corrupt_returned_not_acted(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="search.round", kind="interrupt", round=3),
            FaultSpec(site="checkpoint.write", kind="corrupt"),
        ))
        assert plan.fire("search.round", round=3).kind == KIND_INTERRUPT
        assert plan.fire("checkpoint.write", round=1).kind == KIND_CORRUPT

    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="evaluate", kind="transient", round=2,
                          side=1, run=("a", "b"), attempts=(1, 2)),
                FaultSpec(site="worker.init", kind="crash", attempts=()),
            ),
            seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_corruption_is_deterministic_and_real(self):
        plan = FaultPlan(seed=3)
        payload = bytes(range(256)) * 8
        first = plan.corrupt(payload, round=2)
        second = plan.corrupt(payload, round=2)
        assert first == second
        assert first != payload
        assert plan.corrupt(payload, round=5) != first
        assert plan.corrupt(b"", round=1) == b""

    def test_crash_exit_status_is_distinctive(self):
        assert CRASH_EXIT_STATUS not in (0, 1, 2)
