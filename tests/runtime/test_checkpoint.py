"""Checkpoint format, content keys, corruption handling, interrupts."""

import dataclasses
import os
import signal

import pytest

from repro.core.composite import CompositeStats
from repro.exceptions import SearchInterrupted
from repro.logs.log import EventLog
from repro.obs import MetricsRegistry, Observer
from repro.runtime.checkpoint import (
    CheckpointManager,
    InterruptGuard,
    SearchSnapshot,
    search_content_key,
)
from repro.runtime.faults import FaultPlan, FaultSpec


def _key(first=None, second=None, config=None, knobs=None):
    return search_content_key(
        first if first is not None else EventLog([["a", "b"]]),
        second if second is not None else EventLog([["x", "y"]]),
        config if config is not None else {"alpha": 1.0},
        knobs if knobs is not None else {"delta": 0.01},
    )


def _snapshot(key, rounds=1):
    return SearchSnapshot(
        key=key,
        rounds=rounds,
        history=((0, ("a", "b")),),
        stats=CompositeStats(rounds=rounds),
        current={"matrix": [1.0, 2.0]},
    )


class TestContentKey:
    def test_stable_across_calls(self):
        assert _key() == _key()

    def test_sensitive_to_log_content(self):
        assert _key(first=EventLog([["a", "c"]])) != _key()
        assert _key(second=EventLog([["x", "y"], ["x"]])) != _key()

    def test_sensitive_to_config_and_knobs(self):
        assert _key(config={"alpha": 0.5}) != _key()
        assert _key(knobs={"delta": 0.02}) != _key()

    def test_insensitive_to_mapping_order(self):
        assert (
            _key(config={"alpha": 1.0, "c": 0.8})
            == _key(config={"c": 0.8, "alpha": 1.0})
        )


class TestCheckpointManager:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        key = _key()
        path = manager.save(_snapshot(key, rounds=2))
        assert path == manager.path_for(key)
        assert path.exists()
        loaded = manager.load(key)
        assert loaded is not None
        assert loaded.key == key
        assert loaded.rounds == 2
        assert loaded.history == ((0, ("a", "b")),)
        assert loaded.stats == CompositeStats(rounds=2)
        assert manager.writes == 1

    def test_missing_checkpoint_is_silent_cold_start(self, tmp_path):
        observer = Observer(metrics=MetricsRegistry())
        manager = CheckpointManager(tmp_path, observer=observer)
        assert manager.load(_key()) is None
        # No file at all is the normal first run, not corruption.
        assert "checkpoint_corrupt_total" not in observer.metrics.to_prometheus_text()

    def test_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=3)
        assert [r for r in range(1, 10) if manager.due(r)] == [3, 6, 9]
        assert CheckpointManager(tmp_path).due(1)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every=0)

    @pytest.mark.parametrize("mutilate", [
        lambda raw: raw[: len(raw) // 2],                      # torn write
        lambda raw: raw.replace(b"EMSCKPT1", b"EMSCKPT9", 1),  # foreign magic
        lambda raw: bytes(reversed(raw)),                      # garbage
    ])
    def test_mutilated_file_degrades_to_cold_start(self, tmp_path, mutilate):
        observer = Observer(metrics=MetricsRegistry())
        manager = CheckpointManager(tmp_path, observer=observer)
        key = _key()
        path = manager.save(_snapshot(key))
        path.write_bytes(mutilate(path.read_bytes()))
        assert manager.load(key) is None
        assert "checkpoint_corrupt_total 1" in observer.metrics.to_prometheus_text()

    def test_payload_bit_flip_detected_by_digest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        key = _key()
        path = manager.save(_snapshot(key))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert manager.load(key) is None

    def test_key_mismatch_never_resumes_foreign_state(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        key, other = _key(), _key(config={"alpha": 0.25})
        # Force a filename collision so only the in-file key guards us.
        manager.save(_snapshot(key))
        os.replace(manager.path_for(key), manager.path_for(other))
        assert manager.load(other) is None

    def test_injected_write_corruption_caught_on_load(self, tmp_path):
        observer = Observer(metrics=MetricsRegistry())
        plan = FaultPlan(specs=(
            FaultSpec(site="checkpoint.write", kind="corrupt", round=1),
        ))
        manager = CheckpointManager(tmp_path, observer=observer, faults=plan)
        key = _key()
        manager.save(_snapshot(key, rounds=1))
        assert manager.load(key) is None
        assert "checkpoint_corrupt_total 1" in observer.metrics.to_prometheus_text()
        # A round the plan does not target writes a clean checkpoint.
        manager.save(_snapshot(key, rounds=2))
        assert manager.load(key).rounds == 2

    def test_save_overwrites_previous_snapshot(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        key = _key()
        manager.save(_snapshot(key, rounds=1))
        manager.save(_snapshot(key, rounds=2))
        assert manager.load(key).rounds == 2
        assert len(list(tmp_path.iterdir())) == 1  # no tmp litter

    def test_counters_emitted(self, tmp_path):
        observer = Observer(metrics=MetricsRegistry())
        manager = CheckpointManager(tmp_path, observer=observer)
        key = _key()
        manager.save(_snapshot(key))
        manager.load(key)
        text = observer.metrics.to_prometheus_text()
        assert "checkpoint_writes_total 1" in text
        assert "checkpoint_resumes_total 1" in text


class TestInterruptGuard:
    def test_trip_and_check(self):
        guard = InterruptGuard(signals=())
        guard.check()  # not tripped: no-op
        guard.trip("fault:search.round[2]")
        with pytest.raises(SearchInterrupted) as excinfo:
            guard.check()
        assert excinfo.value.signal_name == "fault:search.round[2]"

    def test_real_signal_sets_flag_once(self):
        guard = InterruptGuard(signals=(signal.SIGUSR1,))
        with guard:
            os.kill(os.getpid(), signal.SIGUSR1)
            assert guard.interrupted
            assert guard.signal_name == "SIGUSR1"
            # The handler restored the previous disposition for a
            # second, harder signal.
            assert signal.getsignal(signal.SIGUSR1) != guard._handle
        assert signal.getsignal(signal.SIGUSR1) == signal.SIG_DFL

    def test_exit_restores_previous_handler(self):
        marker = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGUSR1, marker)
        try:
            with InterruptGuard(signals=(signal.SIGUSR1,)):
                assert signal.getsignal(signal.SIGUSR1) != marker
            assert signal.getsignal(signal.SIGUSR1) == marker
        finally:
            signal.signal(signal.SIGUSR1, previous)

    def test_snapshot_stats_are_a_copy(self, tmp_path):
        # Mutating live stats after a save must not leak into the file.
        manager = CheckpointManager(tmp_path)
        key = _key()
        stats = CompositeStats(rounds=1)
        manager.save(SearchSnapshot(
            key=key, rounds=1, history=(),
            stats=dataclasses.replace(stats), current=None,
        ))
        stats.rounds = 99
        assert manager.load(key).stats.rounds == 1
