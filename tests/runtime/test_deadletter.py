"""Dead-letter archive: content addressing, idempotence, ingestion wiring."""

import hashlib
import json

import pytest

from repro.logs.csvio import read_csv
from repro.obs import MetricsRegistry, Observer
from repro.runtime.deadletter import DeadLetterArchive
from repro.runtime.report import IngestionReport


class TestArchive:
    def test_put_and_load_round_trip(self, tmp_path):
        archive = DeadLetterArchive(tmp_path)
        payload = b"c1,Approve,not-a-timestamp\n"
        digest = archive.put(payload, {"source": "x.csv", "problem": "bad ts"})
        assert digest == hashlib.sha256(payload).hexdigest()
        loaded_payload, context = archive.load(digest)
        assert loaded_payload == payload
        assert context["digest"] == digest
        assert context["occurrences"][0]["problem"] == "bad ts"

    def test_layout_is_content_addressed(self, tmp_path):
        archive = DeadLetterArchive(tmp_path)
        digest = archive.put(b"payload", {})
        path = archive.path_for(digest)
        assert path == tmp_path / digest[:2] / digest
        assert (path / "payload.bin").read_bytes() == b"payload"
        assert json.loads((path / "context.json").read_text())["digest"] == digest

    def test_resubmission_is_idempotent(self, tmp_path):
        archive = DeadLetterArchive(tmp_path)
        first = archive.put(b"payload", {"problem": "first sighting"})
        second = archive.put(b"payload", {"problem": "second sighting"})
        assert first == second
        assert list(archive.entries()) == [first]
        _, context = archive.load(first)
        problems = [entry["problem"] for entry in context["occurrences"]]
        assert problems == ["first sighting", "second sighting"]

    def test_entries_sorted_and_countable(self, tmp_path):
        archive = DeadLetterArchive(tmp_path)
        digests = {archive.put(bytes([n]), {}) for n in range(5)}
        assert list(archive.entries()) == sorted(digests)
        assert archive.archived == 5

    def test_load_verifies_payload_digest(self, tmp_path):
        archive = DeadLetterArchive(tmp_path)
        digest = archive.put(b"payload", {})
        (archive.path_for(digest) / "payload.bin").write_bytes(b"tampered")
        with pytest.raises(ValueError):
            archive.load(digest)

    def test_load_unknown_digest_raises_key_error(self, tmp_path):
        with pytest.raises(KeyError):
            DeadLetterArchive(tmp_path).load("0" * 64)

    def test_counter_emitted(self, tmp_path):
        observer = Observer(metrics=MetricsRegistry())
        archive = DeadLetterArchive(tmp_path, observer=observer)
        archive.put(b"payload", {})
        assert "dead_letters_total 1" in observer.metrics.to_prometheus_text()


class TestIngestionWiring:
    CSV = (
        "case_id,activity,timestamp\n"
        "c1,Approve,1\n"
        ",Reject,2\n"            # empty case id: dropped
        "c1,Settle,whenever\n"   # bad timestamp: dropped in skip mode
    )

    def _read(self, tmp_path, mode):
        source = tmp_path / "events.csv"
        source.write_text(self.CSV)
        archive = DeadLetterArchive(tmp_path / "dead")
        report = IngestionReport(source=str(source), mode=mode)
        report.archive = archive
        log = read_csv(source, on_error=mode, report=report)
        return log, report, archive

    def test_skip_mode_archives_original_bytes(self, tmp_path):
        log, report, archive = self._read(tmp_path, "skip")
        assert report.rows_dropped == 2
        assert report.archived == 2
        payloads = {archive.load(d)[0] for d in archive.entries()}
        assert b",Reject,2\r\n" in payloads
        assert b"c1,Settle,whenever\r\n" in payloads
        contexts = [archive.load(d)[1] for d in archive.entries()]
        for context in contexts:
            occurrence = context["occurrences"][0]
            assert occurrence["mode"] == "skip"
            assert occurrence["source"].endswith("events.csv")
            assert occurrence["location"].startswith("row ")

    def test_repair_mode_archives_only_unrecoverable_rows(self, tmp_path):
        log, report, archive = self._read(tmp_path, "repair")
        # The bad timestamp is repaired in place; only the empty case id
        # is unrecoverable and lands in the archive.
        assert report.rows_repaired == 1
        assert report.archived == 1
        payload, _ = archive.load(next(iter(archive.entries())))
        assert payload == b",Reject,2\r\n"

    def test_report_to_dict_counts_archived(self, tmp_path):
        _, report, _ = self._read(tmp_path, "skip")
        assert report.to_dict()["archived"] == 2
        assert "dead-lettered" in report.describe()

    def test_without_archive_nothing_is_written(self, tmp_path):
        source = tmp_path / "events.csv"
        source.write_text(self.CSV)
        report = IngestionReport(source=str(source), mode="skip")
        read_csv(source, on_error="skip", report=report)
        assert report.archived == 0
