"""Fault-injection: CSV ingestion in all three on_error modes."""

import io

import pytest

from repro.exceptions import LogFormatError
from repro.logs.csvio import read_csv
from repro.runtime import IngestionReport

from .conftest import ON_ERROR_MODES


def load(corpus, name, mode):
    report = IngestionReport(mode=mode)
    log = read_csv(corpus / name, on_error=mode, report=report)
    return log, report


class TestGarbageRows:
    def test_raise_mode_aborts(self, corpus):
        with pytest.raises(LogFormatError):
            read_csv(corpus / "garbage_rows.csv", on_error="raise")

    @pytest.mark.parametrize("mode", ["skip", "repair"])
    def test_tolerant_modes_drop_and_account(self, corpus, mode):
        log, report = load(corpus, "garbage_rows.csv", mode)
        # Both short rows are unrecoverable in either mode; the row with
        # a missing timestamp cell loads and puts its case in file order.
        assert report.rows_dropped == 2
        assert report.events_loaded == 5
        # 100% accounting: every row seen is loaded or dropped.
        assert report.rows_seen == report.events_loaded + report.rows_dropped
        assert {t.case_id: t.activities for t in log} == {
            "c1": ("submit", "review"),
            "c2": ("submit", "approve", "archive"),
        }
        assert report.fallback_cases == ["c2"]


class TestEmptyFields:
    def test_raise_mode_rejects_empty_activity(self, corpus):
        with pytest.raises(LogFormatError, match="empty"):
            read_csv(corpus / "empty_fields.csv", on_error="raise")

    @pytest.mark.parametrize("mode", ["skip", "repair"])
    def test_empty_fields_dropped(self, corpus, mode):
        log, report = load(corpus, "empty_fields.csv", mode)
        # Empty case ids / activities cannot be repaired, only dropped.
        assert report.rows_dropped == 4
        assert report.rows_seen == report.events_loaded + report.rows_dropped
        assert {t.case_id: t.activities for t in log} == {
            "c1": ("submit", "close"),
            "c2": ("refund",),
        }
        problems = " ".join(issue.problem for issue in report.dropped)
        assert "case_id" in problems and "activity" in problems


class TestBadTimestamps:
    def test_raise_mode(self, corpus):
        with pytest.raises(LogFormatError, match="timestamp"):
            read_csv(corpus / "bad_timestamps.csv", on_error="raise")

    def test_skip_drops_whole_rows(self, corpus):
        log, report = load(corpus, "bad_timestamps.csv", "skip")
        assert report.rows_dropped == 2
        assert report.rows_repaired == 0
        assert {t.case_id: t.activities for t in log} == {
            "c1": ("submit", "close"),
            "c2": ("close",),
        }

    def test_repair_keeps_events_without_timestamps(self, corpus):
        log, report = load(corpus, "bad_timestamps.csv", "repair")
        assert report.rows_dropped == 0
        assert report.rows_repaired == 2
        assert report.events_loaded == 5
        traces = {t.case_id: t.activities for t in log}
        assert traces["c1"] == ("submit", "review", "close")
        # Repairing strips the timestamp, so the case becomes mixed and
        # falls back to file order — and says so.
        assert "c1" in report.fallback_cases


class TestMixedTimestamps:
    @pytest.mark.parametrize("mode", ON_ERROR_MODES)
    def test_fallback_recorded_in_every_mode(self, corpus, mode):
        log, report = load(corpus, "mixed_timestamps.csv", mode)
        # Fully-timestamped case is sorted, mixed case keeps file order.
        traces = {t.case_id: t.activities for t in log}
        assert traces["c1"] == ("first", "second")
        assert traces["c2"] == ("alpha", "beta", "gamma")
        assert report.fallback_cases == ["c2"]  # c3 has no timestamps at all
        assert report.clean  # nothing dropped or repaired

    def test_fallback_surfaces_in_description(self, corpus):
        _, report = load(corpus, "mixed_timestamps.csv", "raise")
        assert "file order" in report.describe()


class TestReportPlumbing:
    def test_invalid_mode_rejected(self, corpus):
        with pytest.raises(ValueError, match="on_error"):
            read_csv(corpus / "garbage_rows.csv", on_error="ignore")

    def test_report_optional(self, corpus):
        log = read_csv(corpus / "garbage_rows.csv", on_error="skip")
        assert len(log) == 2

    def test_source_recorded(self, corpus):
        report = IngestionReport(mode="skip")
        read_csv(corpus / "garbage_rows.csv", on_error="skip", report=report)
        assert report.source.endswith("garbage_rows.csv")
        assert not report.clean
        payload = report.to_dict()
        assert payload["rows_seen"] == report.rows_seen
        assert len(payload["dropped"]) == report.rows_dropped

    def test_clean_file_clean_report(self):
        report = IngestionReport(mode="skip")
        read_csv(
            io.StringIO("case_id,activity,timestamp\nc1,a,1.0\nc1,b,2.0\n"),
            on_error="skip",
            report=report,
        )
        assert report.clean
        assert report.events_loaded == 2
