"""Fault-injection: XES ingestion — truncated documents and faulty events."""

import pytest

from repro.exceptions import LogFormatError
from repro.logs.xes import read_xes
from repro.runtime import IngestionReport


def load(corpus, name, mode):
    report = IngestionReport(mode=mode)
    log = read_xes(corpus / name, on_error=mode, report=report)
    return log, report


class TestTruncatedDocument:
    def test_raise_mode_aborts(self, corpus):
        with pytest.raises(LogFormatError, match="malformed"):
            read_xes(corpus / "truncated.xes", on_error="raise")

    @pytest.mark.parametrize("mode", ["skip", "repair"])
    def test_salvage_recovers_complete_traces(self, corpus, mode):
        log, report = load(corpus, "truncated.xes", mode)
        # The export broke inside case-2; the two closed traces survive.
        assert [t.case_id for t in log] == ["case-0", "case-1"]
        assert log.name == "tickets"
        assert all(
            t.activities == ("receive", "triage", "resolve", "close") for t in log
        )
        assert report.truncation is not None
        assert not report.clean
        assert report.rows_seen == report.events_loaded + report.rows_dropped

    def test_salvage_from_file_object(self, corpus):
        report = IngestionReport(mode="skip")
        with open(corpus / "truncated.xes", "rb") as handle:
            log = read_xes(handle, on_error="skip", report=report)
        assert len(log) == 2
        assert report.truncation is not None

    def test_truncation_in_report_payload(self, corpus):
        _, report = load(corpus, "truncated.xes", "skip")
        payload = report.to_dict()
        assert payload["truncation"]
        assert "truncat" in report.describe() or "salvage" in report.describe()


class TestFaultyEvents:
    def test_raise_mode_aborts(self, corpus):
        with pytest.raises(LogFormatError, match="concept:name"):
            read_xes(corpus / "faulty_events.xes", on_error="raise")

    def test_skip_drops_faulty_events(self, corpus):
        log, report = load(corpus, "faulty_events.xes", "skip")
        assert report.rows_seen == 5
        assert report.events_loaded == 2
        assert report.rows_dropped == 3
        assert report.rows_repaired == 0
        assert {t.case_id: t.activities for t in log} == {
            "t1": ("start",),
            "t2": ("solo",),
        }

    def test_repair_salvages_bad_timestamp(self, corpus):
        log, report = load(corpus, "faulty_events.xes", "repair")
        assert report.rows_seen == 5
        assert report.events_loaded == 3
        # Events without an activity cannot be repaired, only dropped.
        assert report.rows_dropped == 2
        assert report.rows_repaired == 1
        traces = {t.case_id: t.activities for t in log}
        assert traces["t1"] == ("start", "finish")
        assert traces["t2"] == ("solo",)

    @pytest.mark.parametrize("mode", ["skip", "repair"])
    def test_full_accounting(self, corpus, mode):
        _, report = load(corpus, "faulty_events.xes", mode)
        assert report.rows_seen == report.events_loaded + report.rows_dropped
        locations = [issue.location for issue in report.dropped + report.repaired]
        assert all("trace" in loc and "event" in loc for loc in locations)


class TestModeValidation:
    def test_invalid_mode_rejected(self, corpus):
        with pytest.raises(ValueError, match="on_error"):
            read_xes(corpus / "truncated.xes", on_error="lenient")
