"""CLI failure behaviour: exit codes, budgets, and fault-tolerant flags."""

import json

import pytest

from repro.cli import EXIT_BUDGET_EXHAUSTED, EXIT_INPUT_ERROR, EXIT_WORKER_FAILURE, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured


class TestInputErrors:
    def test_missing_file_exits_2(self, capsys, corpus):
        code, captured = run(
            capsys, "match", str(corpus / "does_not_exist.csv"),
            str(corpus / "garbage_rows.csv"),
        )
        assert code == EXIT_INPUT_ERROR
        assert "error:" in captured.err

    def test_unknown_extension_exits_2(self, capsys, tmp_path):
        weird = tmp_path / "log.parquet"
        weird.write_text("whatever")
        code, captured = run(capsys, "match", str(weird), str(weird))
        assert code == EXIT_INPUT_ERROR
        assert "--format" in captured.err

    def test_bad_rows_in_raise_mode_exit_2(self, capsys, corpus):
        code, captured = run(
            capsys, "match", str(corpus / "garbage_rows.csv"),
            str(corpus / "garbage_rows.csv"),
        )
        assert code == EXIT_INPUT_ERROR
        assert "row" in captured.err

    def test_negative_budget_exits_2(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "garbage_rows.csv"), str(corpus / "garbage_rows.csv"),
            "--on-error", "skip", "--pair-budget", "-5",
        )
        assert code == EXIT_INPUT_ERROR
        assert "must be >= 0" in captured.err

    def test_truncated_xes_in_raise_mode_exits_2(self, capsys, corpus):
        code, captured = run(
            capsys, "match", str(corpus / "truncated.xes"),
            str(corpus / "truncated.xes"),
        )
        assert code == EXIT_INPUT_ERROR
        assert "malformed" in captured.err


class TestBudgets:
    def test_timeout_without_degradation_exits_3(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--timeout", "0", "--no-degrade",
        )
        assert code == EXIT_BUDGET_EXHAUSTED
        assert "degradation disabled" in captured.err

    def test_timeout_with_degradation_exits_0(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--timeout", "0", "--json",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["runtime"]["degraded"] is True
        assert payload["runtime"]["stage"] in ("estimated", "partial")
        assert payload["runtime"]["reason"] == "deadline"

    def test_pair_budget_composite_degrades(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--composite", "--pair-budget", "100", "--json",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["runtime"]["degraded"] is True
        assert payload["correspondences"] is not None

    def test_degradation_note_on_stderr_in_plain_mode(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--timeout", "0",
        )
        assert code == 0
        assert "degraded" in captured.err

    def test_unbudgeted_run_reports_exact(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--json",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["runtime"]["stage"] == "exact"
        assert payload["runtime"]["degraded"] is False


class TestFaultTolerantIngestion:
    def test_skip_mode_loads_dirty_csv(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "garbage_rows.csv"), str(corpus / "garbage_rows.csv"),
            "--on-error", "skip", "--json",
        )
        assert code == 0
        payload = json.loads(captured.out)
        first = payload["ingestion"]["first"]
        assert first["clean"] is False
        assert first["rows_seen"] == first["events_loaded"] + len(first["dropped"])

    def test_repair_mode_salvages_truncated_xes(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "truncated.xes"), str(corpus / "truncated.xes"),
            "--on-error", "repair", "--json",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["ingestion"]["first"]["truncation"]
        assert payload["objective"] > 0.0

    def test_ingestion_note_on_stderr_in_plain_mode(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "garbage_rows.csv"), str(corpus / "garbage_rows.csv"),
            "--on-error", "skip",
        )
        assert code == 0
        assert "dropped" in captured.err


class TestDurabilityFlags:
    def test_exit_codes_are_distinct(self):
        assert len({EXIT_INPUT_ERROR, EXIT_BUDGET_EXHAUSTED,
                    EXIT_WORKER_FAILURE}) == 3

    def test_resume_requires_checkpoint_dir(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--composite", "--resume",
        )
        assert code == EXIT_INPUT_ERROR
        assert "--checkpoint-dir" in captured.err

    def test_checkpoint_every_validated(self, capsys, corpus, tmp_path):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--composite", "--checkpoint-dir", str(tmp_path),
            "--checkpoint-every", "0",
        )
        assert code == EXIT_INPUT_ERROR
        assert "checkpoint-every" in captured.err

    def test_max_retries_validated(self, capsys, corpus):
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--composite", "--max-retries", "0",
        )
        assert code == EXIT_INPUT_ERROR
        assert "max-retries" in captured.err

    def test_unreadable_fault_plan_exits_2(self, capsys, corpus, tmp_path):
        bad_plan = tmp_path / "plan.json"
        bad_plan.write_text("{not json")
        code, captured = run(
            capsys, "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--composite", "--fault-plan", str(bad_plan),
        )
        assert code == EXIT_INPUT_ERROR
        assert "fault plan" in captured.err

    def test_checkpointed_run_writes_and_resumes(self, capsys, corpus, tmp_path):
        argv = (
            "match",
            str(corpus / "adversarial_a.csv"), str(corpus / "adversarial_b.csv"),
            "--composite", "--checkpoint-dir", str(tmp_path), "--json",
        )
        code, captured = run(capsys, *argv)
        assert code == 0
        first = json.loads(captured.out)
        assert list(tmp_path.glob("ems-*.ckpt"))
        code, captured = run(capsys, *argv, "--resume")
        assert code == 0
        second = json.loads(captured.out)
        assert second["correspondences"] == first["correspondences"]
        assert second["objective"] == first["objective"]


class TestDeadLetterCLI:
    def test_skip_mode_archives_dropped_rows(self, capsys, corpus, tmp_path):
        dead = tmp_path / "dead"
        code, captured = run(
            capsys, "match",
            str(corpus / "garbage_rows.csv"), str(corpus / "garbage_rows.csv"),
            "--on-error", "skip", "--dead-letter-dir", str(dead), "--json",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["ingestion"]["first"]["archived"] > 0
        contexts = list(dead.rglob("context.json"))
        assert contexts
        document = json.loads(contexts[0].read_text())
        assert document["occurrences"][0]["mode"] == "skip"

    def test_unparseable_file_archived_whole(self, capsys, corpus, tmp_path):
        dead = tmp_path / "dead"
        code, _ = run(
            capsys, "match",
            str(corpus / "truncated.xes"), str(corpus / "truncated.xes"),
            "--dead-letter-dir", str(dead),
        )
        assert code == EXIT_INPUT_ERROR
        payloads = list(dead.rglob("payload.bin"))
        assert len(payloads) == 1
        assert payloads[0].read_bytes() == (corpus / "truncated.xes").read_bytes()

    def test_without_flag_nothing_is_archived(self, capsys, corpus, tmp_path):
        code, _ = run(
            capsys, "match",
            str(corpus / "garbage_rows.csv"), str(corpus / "garbage_rows.csv"),
            "--on-error", "skip",
        )
        assert code == 0
        assert not list(tmp_path.iterdir())


class TestMarkdownReport:
    def test_report_includes_runtime_and_ingestion(self, capsys, corpus, tmp_path):
        destination = tmp_path / "report.md"
        code, _ = run(
            capsys, "match",
            str(corpus / "garbage_rows.csv"), str(corpus / "garbage_rows.csv"),
            "--on-error", "skip", "--timeout", "0",
            "--report", str(destination),
        )
        assert code == 0
        text = destination.read_text(encoding="utf-8")
        assert "## Runtime" in text
        assert "## Ingestion" in text
        assert "dropped" in text
