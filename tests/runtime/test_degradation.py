"""The degradation ladder: every rung reachable, exact mode untouched."""

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.exceptions import BudgetExhausted
from repro.graph.dependency import DependencyGraph
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.runtime import DegradationPolicy, MatchBudget


def graphs(pair):
    return DependencyGraph.from_log(pair[0]), DependencyGraph.from_log(pair[1])


class TestEngineResilience:
    def test_exact_stage_within_budget(self, small_pair):
        first, second = graphs(small_pair)
        engine = EMSEngine(EMSConfig())
        meter = MatchBudget(deadline=120.0).start()
        result, stage, reason = engine.similarity_resilient(first, second, meter)
        assert stage == "exact"
        assert reason is None
        assert result.converged

    def test_metered_run_is_bit_identical_to_unmetered(self, adversarial_pair):
        first, second = graphs(adversarial_pair)
        engine = EMSEngine(EMSConfig())
        plain = engine.similarity(first, second)
        metered, stage, _ = engine.similarity_resilient(
            first, second, MatchBudget(deadline=300.0).start()
        )
        assert stage == "exact"
        assert np.array_equal(plain.matrix.values, metered.matrix.values)
        assert plain.pair_updates == metered.pair_updates

    def test_estimated_stage_on_pair_budget(self, adversarial_pair):
        first, second = graphs(adversarial_pair)
        engine = EMSEngine(EMSConfig())
        meter = MatchBudget(max_pair_updates=50).start()
        result, stage, reason = engine.similarity_resilient(first, second, meter)
        assert stage == "estimated"
        assert reason == "pair-updates"
        assert result.estimated
        assert np.all(result.matrix.values >= 0.0)
        assert np.all(result.matrix.values <= 1.0)

    def test_partial_stage_when_estimation_disallowed(self, adversarial_pair):
        first, second = graphs(adversarial_pair)
        engine = EMSEngine(EMSConfig())
        meter = MatchBudget(max_pair_updates=50).start()
        result, stage, reason = engine.similarity_resilient(
            first, second, meter, DegradationPolicy.partial_only()
        )
        assert stage == "partial"
        assert reason == "pair-updates"
        assert not result.converged
        assert result.matrix.values.shape == (
            len(first.nodes), len(second.nodes)
        )

    def test_ladder_disabled_raises(self, adversarial_pair):
        first, second = graphs(adversarial_pair)
        engine = EMSEngine(EMSConfig())
        meter = MatchBudget(max_pair_updates=50).start()
        with pytest.raises(BudgetExhausted):
            engine.similarity_resilient(
                first, second, meter, DegradationPolicy.none()
            )


class TestMatcherResilience:
    def test_no_budget_reports_exact(self, small_pair):
        outcome = EMSMatcher().match(*small_pair)
        assert outcome.runtime is not None
        assert outcome.runtime.stage == "exact"
        assert not outcome.runtime.degraded

    def test_no_budget_objective_matches_generous_budget(self, small_pair):
        plain = EMSMatcher().match(*small_pair)
        budgeted = EMSMatcher(budget=MatchBudget(deadline=300.0)).match(*small_pair)
        assert plain.objective == budgeted.objective
        assert plain.correspondences == budgeted.correspondences

    def test_exhausted_deadline_still_returns_outcome(self, small_pair):
        outcome = EMSMatcher(budget=MatchBudget(deadline=0.0)).match(*small_pair)
        assert outcome.runtime.degraded
        assert outcome.runtime.stage == "estimated"
        assert outcome.runtime.reason == "deadline"
        assert 0.0 <= outcome.objective <= 1.0

    def test_pair_budget_partial(self, small_pair):
        outcome = EMSMatcher(
            budget=MatchBudget(max_pair_updates=5),
            degradation=DegradationPolicy.partial_only(),
        ).match(*small_pair)
        assert outcome.runtime.stage == "partial"
        assert outcome.runtime.reason == "pair-updates"

    def test_no_fallback_raises(self, small_pair):
        matcher = EMSMatcher(
            budget=MatchBudget(deadline=0.0), degradation=DegradationPolicy.none()
        )
        with pytest.raises(BudgetExhausted):
            matcher.match(*small_pair)


class TestCompositeResilience:
    def test_exhausted_deadline_returns_valid_outcome(self, adversarial_pair):
        """The acceptance criterion: never a traceback, always an outcome."""
        matcher = EMSCompositeMatcher(budget=MatchBudget(deadline=0.0))
        outcome = matcher.match(*adversarial_pair)
        assert outcome.runtime is not None
        assert outcome.runtime.degraded
        assert outcome.runtime.stage in ("estimated", "partial")
        assert 0.0 <= outcome.objective <= 1.0

    def test_search_truncation_keeps_exact_matrix(self, small_pair):
        # Size the budget from the real initial-similarity cost so the
        # fixpoint completes but the candidate search cannot.
        baseline = EMSMatcher().match(*small_pair)
        initial_cost = int(baseline.diagnostics["pair_updates"])
        matcher = EMSCompositeMatcher(
            budget=MatchBudget(max_pair_updates=initial_cost + 1),
            min_confidence=0.5,
        )
        outcome = matcher.match(*small_pair)
        assert outcome.runtime.degraded
        assert outcome.runtime.stage == "partial"
        assert outcome.runtime.reason == "pair-updates"
        assert "truncated" in outcome.runtime.detail
        # The matrix itself is the exact singleton solution.
        assert outcome.objective == pytest.approx(baseline.objective)

    def test_unbudgeted_composite_unchanged_and_annotated(self, small_pair):
        outcome = EMSCompositeMatcher().match(*small_pair)
        assert outcome.runtime is not None
        assert outcome.runtime.stage == "exact"
        assert outcome.runtime.rounds >= 1

    def test_composite_no_fallback_raises(self, adversarial_pair):
        matcher = EMSCompositeMatcher(
            budget=MatchBudget(deadline=0.0), degradation=DegradationPolicy.none()
        )
        with pytest.raises(BudgetExhausted):
            matcher.match(*adversarial_pair)

    def test_runtime_report_serializes(self, small_pair):
        outcome = EMSCompositeMatcher(budget=MatchBudget(deadline=0.0)).match(*small_pair)
        payload = outcome.runtime.to_dict()
        assert payload["degraded"] is True
        assert payload["stage"] in ("estimated", "partial")
        assert "pair_updates" in payload
        assert isinstance(outcome.runtime.describe(), str)
