"""Unit tests for MatchBudget / BudgetMeter."""

import pytest

from repro.exceptions import BudgetExhausted, ReproError
from repro.runtime import BudgetMeter, MatchBudget


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestMatchBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            MatchBudget(deadline=-1.0)
        with pytest.raises(ValueError):
            MatchBudget(max_pair_updates=-5)

    def test_unbounded(self):
        assert MatchBudget().unbounded
        assert not MatchBudget(deadline=1.0).unbounded
        assert not MatchBudget(max_pair_updates=10).unbounded

    def test_describe(self):
        assert MatchBudget().describe() == "unbounded"
        text = MatchBudget(deadline=2.5, max_pair_updates=100).describe()
        assert "2.5" in text and "100" in text

    def test_zero_deadline_is_legal(self):
        assert MatchBudget(deadline=0.0).deadline == 0.0


class TestBudgetMeter:
    def test_deadline_check(self):
        clock = FakeClock()
        meter = MatchBudget(deadline=10.0).start(clock)
        meter.check()  # within budget
        clock.now = 10.5
        with pytest.raises(BudgetExhausted) as excinfo:
            meter.check()
        assert excinfo.value.reason == "deadline"

    def test_pair_update_budget(self):
        meter = MatchBudget(max_pair_updates=3).start(FakeClock())
        for _ in range(3):
            meter.tick()
        with pytest.raises(BudgetExhausted) as excinfo:
            meter.tick()
        assert excinfo.value.reason == "pair-updates"
        assert excinfo.value.pair_updates == 4

    def test_check_reports_spent_pair_budget(self):
        meter = MatchBudget(max_pair_updates=2).start(FakeClock())
        meter.tick()
        meter.tick()
        with pytest.raises(BudgetExhausted):
            meter.check()

    def test_tick_rereads_clock_on_stride(self):
        clock = FakeClock()
        meter = MatchBudget(deadline=5.0).start(clock)
        clock.now = 6.0
        # Under the stride no clock read happens...
        for _ in range(255):
            meter.tick()
        # ...the 256th re-reads and trips the deadline.
        with pytest.raises(BudgetExhausted):
            meter.tick()

    def test_elapsed(self):
        clock = FakeClock(100.0)
        meter = MatchBudget().start(clock)
        clock.now = 101.5
        assert meter.elapsed() == pytest.approx(1.5)

    def test_exhaustion_is_a_repro_error(self):
        assert issubclass(BudgetExhausted, ReproError)

    def test_unbounded_meter_never_raises(self):
        meter = MatchBudget().start(FakeClock())
        for _ in range(1000):
            meter.tick()
        meter.check()


class TestBatchedTick:
    """tick(n) must be indistinguishable from n single ticks."""

    def test_batched_equals_singles(self):
        single = MatchBudget(max_pair_updates=100).start(FakeClock())
        batched = MatchBudget(max_pair_updates=100).start(FakeClock())
        for _ in range(60):
            single.tick()
        batched.tick(60)
        assert single.pair_updates_spent == batched.pair_updates_spent == 60

    def test_overshoot_raises_with_full_charge_committed(self):
        meter = MatchBudget(max_pair_updates=10).start(FakeClock())
        with pytest.raises(BudgetExhausted) as excinfo:
            meter.tick(25)
        assert excinfo.value.reason == "pair-updates"
        assert meter.pair_updates_spent == 25

    def test_zero_charge_is_a_noop(self):
        meter = MatchBudget(max_pair_updates=0).start(FakeClock())
        meter.tick(0)  # must not raise even with the cap already at 0
        assert meter.pair_updates_spent == 0

    def test_negative_charge_rejected(self):
        meter = MatchBudget().start(FakeClock())
        with pytest.raises(ValueError):
            meter.tick(-1)

    def test_deadline_checked_when_batch_crosses_stride(self):
        clock = FakeClock()
        meter = MatchBudget(deadline=5.0).start(clock)
        clock.now = 6.0
        meter.tick(255)  # below the stride boundary: no clock read
        with pytest.raises(BudgetExhausted) as excinfo:
            meter.tick(1)  # 255 -> 256 crosses the boundary
        assert excinfo.value.reason == "deadline"

    def test_deadline_not_checked_within_stride(self):
        clock = FakeClock()
        meter = MatchBudget(deadline=5.0).start(clock)
        clock.now = 6.0
        meter.tick(100)
        meter.tick(100)  # cumulative 200 < 256: still no clock read
        assert meter.pair_updates_spent == 200

    def test_large_batch_crossing_stride_trips_deadline(self):
        clock = FakeClock()
        meter = MatchBudget(deadline=5.0).start(clock)
        clock.now = 6.0
        with pytest.raises(BudgetExhausted):
            meter.tick(1000)

    def test_pair_updates_remaining(self):
        meter = MatchBudget(max_pair_updates=10).start(FakeClock())
        assert meter.pair_updates_remaining == 10
        meter.tick(4)
        assert meter.pair_updates_remaining == 6
        assert MatchBudget().start(FakeClock()).pair_updates_remaining is None
