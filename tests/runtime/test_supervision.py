"""Supervised execution: retry policy, wave supervision, quarantine."""

from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.exceptions import BudgetExhausted, WorkerPoolError
from repro.runtime.faults import FaultPlan, FaultSpec, TransientFault
from repro.runtime.supervise import (
    QuarantineRecord,
    RetryPolicy,
    SupervisedPool,
    run_supervised,
)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=11)
        assert policy.delay(2) == policy.delay(2)
        stretched = policy.delay(2)
        plain = RetryPolicy(base_delay=0.1).delay(2)
        assert plain <= stretched <= plain * 1.5

    def test_respawn_limit_exceeds_one_poison_candidate(self):
        # A single poison candidate may break the pool once per attempt;
        # the derived limit must not declare the pool dead before the
        # candidate quarantines.
        policy = RetryPolicy(max_attempts=3)
        assert policy.respawn_limit > policy.max_attempts
        assert RetryPolicy(max_respawns=1).respawn_limit == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestRunSupervised:
    POLICY = RetryPolicy(max_attempts=3, base_delay=0.01)

    def test_success_passes_value_through(self):
        value, record = run_supervised(
            lambda attempt: attempt * 10,
            policy=self.POLICY, describe=lambda: (0, ("a",)),
        )
        assert value == 10
        assert record is None

    def test_transient_fault_is_retried(self):
        slept = []

        def call(attempt):
            if attempt == 1:
                raise TransientFault("flaky")
            return "ok"

        value, record = run_supervised(
            call, policy=self.POLICY, describe=lambda: (0, ("a",)),
            sleep=slept.append,
        )
        assert value == "ok"
        assert record is None
        assert slept == [pytest.approx(0.01)]

    def test_exhausted_retries_quarantine_with_provenance(self):
        def call(attempt):
            raise TransientFault("always flaky")

        value, record = run_supervised(
            call, policy=self.POLICY, describe=lambda: (1, ("a", "b")),
            round=4, config_hash="cafe", sleep=lambda _: None,
        )
        assert value is None
        assert record == QuarantineRecord(
            side=1, run=("a", "b"), round=4, attempts=3,
            error_type="TransientFault", error_message="always flaky",
            config_hash="cafe",
        )
        assert "a+b" in record.describe()

    def test_deterministic_error_quarantines_without_retries(self):
        calls = []

        def call(attempt):
            calls.append(attempt)
            raise ValueError("poison")

        value, record = run_supervised(
            call, policy=self.POLICY, describe=lambda: (0, ("a",)),
        )
        assert value is None
        assert calls == [1]  # no retries burned on deterministic poison
        assert record.error_type == "ValueError"

    def test_budget_exhaustion_propagates(self):
        def call(attempt):
            raise BudgetExhausted("deadline")

        with pytest.raises(BudgetExhausted):
            run_supervised(
                call, policy=self.POLICY, describe=lambda: (0, ("a",)),
            )


# ----------------------------------------------------------------------
# SupervisedPool on a scriptable in-process stand-in executor: behaviors
# are keyed on (task, attempt) so every failure-handling branch is
# reachable deterministically and without real child processes.
# ----------------------------------------------------------------------
class _FakeFuture:
    def __init__(self, behavior):
        self._behavior = behavior

    def done(self):
        return True

    def cancelled(self):
        return False

    def result(self, timeout=None):
        if isinstance(self._behavior, BaseException):
            raise self._behavior
        return self._behavior


class _FakePool:
    """Executor double: ``script[(task, attempt)]`` is the value returned
    (or the exception raised) by that attempt's future; unscripted
    attempts echo ``(task, attempt)`` back."""

    def __init__(self, script):
        self._script = script

    def submit(self, fn, payload):
        task, attempt = payload
        return _FakeFuture(self._script.get((task, attempt), (task, attempt)))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _pool(script, *, policy=None, task_timeout=None):
    spawned = []

    def factory():
        spawned.append(object())
        return _FakePool(script)

    supervised = SupervisedPool(
        factory,
        fn=None,
        payload=lambda task, attempt: (task, attempt),
        describe=lambda task: (0, (task,)),
        policy=policy or RetryPolicy(max_attempts=3, base_delay=0.0),
        task_timeout=task_timeout,
        sleep=lambda _: None,
    )
    return supervised, spawned


class TestSupervisedPool:
    def test_clean_wave_preserves_task_order(self):
        supervised, _ = _pool({})
        outcomes = supervised.run_wave(["a", "b", "c"])
        assert [o.task for o in outcomes] == ["a", "b", "c"]
        assert [o.value for o in outcomes] == [("a", 1), ("b", 1), ("c", 1)]
        assert all(o.quarantined is None and o.attempts == 1 for o in outcomes)

    def test_transient_failure_retried_in_isolation(self):
        supervised, _ = _pool({("b", 1): TransientFault("flaky")})
        outcomes = supervised.run_wave(["a", "b"])
        assert outcomes[1].value == ("b", 2)
        assert outcomes[1].attempts == 2
        assert supervised.stats.retries == 1
        assert supervised.stats.quarantined == 0

    def test_deterministic_error_quarantined_in_group_phase(self):
        supervised, _ = _pool({("b", 1): ValueError("poison")})
        outcomes = supervised.run_wave(["a", "b", "c"], round=3)
        assert outcomes[0].value == ("a", 1)
        assert outcomes[2].value == ("c", 1)
        record = outcomes[1].quarantined
        assert record is not None
        assert (record.side, record.run, record.round) == (0, ("b",), 3)
        assert record.attempts == 1
        assert supervised.stats.quarantined == 1

    def test_pool_break_respawns_and_finishes_in_isolation(self):
        supervised, spawned = _pool({("a", 1): BrokenProcessPool("crash")})
        outcomes = supervised.run_wave(["a", "b"])
        # The survivor's completed result is drained, not re-run.
        assert outcomes[1].value == ("b", 1)
        assert outcomes[0].value == ("a", 2)
        assert supervised.stats.respawns == 1
        assert len(spawned) == 2

    def test_timeout_kills_pool_and_retries(self):
        supervised, spawned = _pool(
            {("a", 1): FutureTimeoutError()}, task_timeout=0.5
        )
        outcomes = supervised.run_wave(["a"])
        assert outcomes[0].value == ("a", 2)
        assert supervised.stats.timeouts == 1
        assert supervised.stats.respawns == 1
        assert len(spawned) == 2

    def test_unrecoverable_pool_raises_worker_pool_error(self):
        script = {
            ("a", attempt): BrokenProcessPool("crash") for attempt in range(1, 10)
        }
        supervised, _ = _pool(
            script, policy=RetryPolicy(max_attempts=5, base_delay=0.0,
                                       max_respawns=2),
        )
        with pytest.raises(WorkerPoolError) as excinfo:
            supervised.run_wave(["a"])
        assert excinfo.value.respawns == 3

    def test_poison_quarantines_before_pool_declared_dead(self):
        # The derived respawn limit guarantees a lone poison candidate is
        # quarantined (attempts exhausted) rather than escalated to
        # WorkerPoolError.
        script = {
            ("a", attempt): BrokenProcessPool("crash") for attempt in range(1, 10)
        }
        supervised, _ = _pool(
            script, policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        outcomes = supervised.run_wave(["a"])
        assert outcomes[0].quarantined is not None
        assert supervised.stats.quarantined == 1


class TestSerialSupervision:
    """Supervision of the serial composite path via injected faults."""

    KNOBS = dict(delta=0.005, min_confidence=0.9, max_run_length=2)
    RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)

    def test_transient_fault_retried_to_identical_result(self, fig1_logs):
        clean = CompositeMatcher(EMSConfig(), **self.KNOBS).match(*fig1_logs)
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="transient", round=1, attempts=(1,)),
        ))
        faulted = CompositeMatcher(
            EMSConfig(), retry=self.RETRY, faults=plan, **self.KNOBS
        ).match(*fig1_logs)
        assert faulted.accepted_first == clean.accepted_first
        assert faulted.accepted_second == clean.accepted_second
        np.testing.assert_array_equal(
            faulted.matrix.values, clean.matrix.values
        )
        assert faulted.stats.worker_retries == 1
        assert faulted.quarantined == ()

    def test_poison_candidate_quarantined_and_round_completes(self, fig1_logs):
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="transient",
                      side=0, run=("C", "D"), attempts=()),
        ))
        result = CompositeMatcher(
            EMSConfig(), retry=self.RETRY, faults=plan, **self.KNOBS
        ).match(*fig1_logs)
        # The only viable merge was poisoned, so nothing is accepted —
        # but the search still completes and reports the quarantine.
        assert result.accepted_first == ()
        assert len(result.quarantined) == 1
        record = result.quarantined[0]
        assert (record.side, record.run) == (0, ("C", "D"))
        assert record.attempts == self.RETRY.max_attempts
        assert record.error_type == "TransientFault"
        assert record.config_hash == ""  # no checkpointing configured
        assert result.stats.candidates_quarantined == 1
        assert result.stats.worker_retries == self.RETRY.max_attempts - 1
