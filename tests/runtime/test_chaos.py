"""Chaos suite: scripted faults against the full composite pipeline.

Every test drives the real supervised worker pool (spawned processes,
shared-memory transport) with a deterministic
:class:`~repro.runtime.faults.FaultPlan` and asserts the durability
contract: faulted runs complete through retry/respawn/quarantine with
*identical* final correspondences, unrecoverable environments surface as
:class:`~repro.exceptions.WorkerPoolError` (CLI exit code 4), and
nothing leaks.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import EXIT_WORKER_FAILURE, main
from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.exceptions import WorkerPoolError
from repro.logs.csvio import write_csv
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.supervise import RetryPolicy

KNOBS = dict(delta=0.001)
RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def _match(pair, *, faults=None, workers=2, retry=RETRY, **extra):
    matcher = CompositeMatcher(
        EMSConfig(), workers=workers, retry=retry, faults=faults,
        **KNOBS, **extra,
    )
    return matcher.match(*pair)


def _assert_identical(faulted, clean):
    assert faulted.accepted_first == clean.accepted_first
    assert faulted.accepted_second == clean.accepted_second
    assert faulted.members_first == clean.members_first
    assert faulted.members_second == clean.members_second
    np.testing.assert_array_equal(faulted.matrix.values, clean.matrix.values)
    assert faulted.stats.rounds == clean.stats.rounds


class TestPoolFaultRecovery:
    def test_worker_crash_is_retried_to_identical_result(self, wide_pair):
        clean = _match(wide_pair)
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="crash", round=1,
                      side=0, run=("A1", "A2"), attempts=(1,)),
        ))
        faulted = _match(wide_pair, faults=plan)
        _assert_identical(faulted, clean)
        assert faulted.stats.pool_respawns >= 1
        assert faulted.quarantined == ()

    def test_hung_evaluation_times_out_and_recovers(self, wide_pair):
        clean = _match(wide_pair)
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="timeout", round=1,
                      side=0, run=("B1", "B2"), attempts=(1,), delay=30.0),
        ))
        faulted = _match(wide_pair, faults=plan, task_timeout=1.0)
        _assert_identical(faulted, clean)
        assert faulted.stats.pool_respawns >= 1
        assert faulted.stats.worker_retries >= 1

    def test_transient_worker_fault_heals_without_respawn(self, wide_pair):
        clean = _match(wide_pair)
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="transient", round=1,
                      side=0, run=("C1", "C2"), attempts=(1,)),
        ))
        faulted = _match(wide_pair, faults=plan)
        _assert_identical(faulted, clean)
        assert faulted.stats.worker_retries >= 1
        assert faulted.stats.pool_respawns == 0

    def test_poison_candidate_quarantined_in_pool_run(self, wide_pair):
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="transient",
                      side=0, run=("D1", "D2"), attempts=()),
        ))
        result = _match(wide_pair, faults=plan)
        assert ("D1", "D2") not in result.accepted_first
        assert any(
            record.run == ("D1", "D2") for record in result.quarantined
        )
        assert result.stats.candidates_quarantined >= 1
        # The other three merges still went through.
        assert len(result.accepted_first) == 3

    def test_repeated_init_crash_is_unrecoverable(self, wide_pair):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker.init", kind="crash", attempts=()),
        ))
        with pytest.raises(WorkerPoolError) as excinfo:
            _match(wide_pair, faults=plan,
                   retry=RetryPolicy(max_attempts=2, base_delay=0.0,
                                     max_respawns=2))
        assert excinfo.value.respawns >= 2


@pytest.mark.skipif(not Path("/dev/shm").is_dir(), reason="no /dev/shm")
class TestSharedMemoryHygiene:
    def _segments(self):
        return {p.name for p in Path("/dev/shm").iterdir()}

    def test_no_segment_leak_after_worker_crash(self, wide_pair):
        plan = FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="crash", round=1,
                      side=0, run=("A1", "A2"), attempts=(1,)),
        ))
        before = self._segments()
        _match(wide_pair, faults=plan)
        leaked = self._segments() - before
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_no_segment_leak_after_unrecoverable_pool(self, wide_pair):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker.init", kind="crash", attempts=()),
        ))
        before = self._segments()
        with pytest.raises(WorkerPoolError):
            _match(wide_pair, faults=plan,
                   retry=RetryPolicy(max_attempts=2, base_delay=0.0,
                                     max_respawns=1))
        leaked = self._segments() - before
        assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestChaosCLI:
    """The chaos-smoke contract: faulted CLI runs match clean ones."""

    @pytest.fixture()
    def csv_pair(self, tmp_path, wide_pair):
        first, second = tmp_path / "wide_a.csv", tmp_path / "wide_b.csv"
        write_csv(wide_pair[0], first)
        write_csv(wide_pair[1], second)
        return first, second

    def _run(self, capsys, csv_pair, *extra):
        code = main([
            "match", str(csv_pair[0]), str(csv_pair[1]),
            "--composite", "--delta", "0.001", "--json", *extra,
        ])
        captured = capsys.readouterr()
        return code, (json.loads(captured.out) if code == 0 else captured.err)

    def test_faulted_run_matches_clean_run(self, capsys, tmp_path, csv_pair):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(FaultPlan(specs=(
            FaultSpec(site="evaluate", kind="crash", round=1,
                      side=0, run=("A1", "A2"), attempts=(1,)),
        )).to_json())
        code, clean = self._run(capsys, csv_pair, "--workers", "2")
        assert code == 0
        code, faulted = self._run(
            capsys, csv_pair, "--workers", "2",
            "--fault-plan", str(plan_path), "--max-retries", "3",
        )
        assert code == 0
        assert faulted["correspondences"] == clean["correspondences"]
        assert faulted["objective"] == clean["objective"]
        assert faulted["quarantined"] == []
        assert faulted["diagnostics"]["pool_respawns"] >= 1

    def test_unrecoverable_pool_exits_4(self, capsys, tmp_path, csv_pair):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(FaultPlan(specs=(
            FaultSpec(site="worker.init", kind="crash", attempts=()),
        )).to_json())
        code, err = self._run(
            capsys, csv_pair, "--workers", "2", "--fault-plan", str(plan_path),
        )
        assert code == EXIT_WORKER_FAILURE
        assert "worker pool" in err
