"""The benchmark harness's regression gate (`compare`).

Machine-independent checks only: the floor keys must be enforced, and —
the part that once silently passed — a floor key missing from either
payload must fail loudly instead of defaulting to a vacuous verdict.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_core_kernels import FLOORS, compare, environment_warnings  # noqa: E402


def payload(**overrides) -> dict:
    base = {
        "calibration_time": 1.0,
        "scenarios": {},
        "environment": {"python": "3.11.7", "numpy": "2.4.6"},
        "speedup_exact_20": 5.0,
        "speedup_composite": 4.0,
        "memory_reduction_sparse": 6.0,
        "sparse_time_ratio_20": 0.9,
        "noop_observer_overhead": 1.0,
        "retry_overhead": 1.0,
        "warm_cache_speedup": 7.0,
        "compiled_time_ratio_20": 1.0,
        "ingest_sharded_memory": 0.2,
        "stats_store_warm": 20.0,
        "match_store_warm": 50.0,
        "sql_pair_counts": 1.0,
        "service_warm_speedup": 25.0,
    }
    base.update(overrides)
    return base


class TestFloorKeys:
    def test_clean_payloads_pass(self):
        assert compare(payload(), payload(), 2.0) == []

    def test_missing_key_in_current_fails(self):
        for key, _, _, _ in FLOORS:
            current = payload()
            del current[key]
            failures = compare(current, payload(), 2.0)
            assert any(key in failure and "current" in failure
                       for failure in failures), key

    def test_missing_key_in_baseline_fails(self):
        for key, _, _, _ in FLOORS:
            baseline = payload()
            del baseline[key]
            failures = compare(payload(), baseline, 2.0)
            assert any(key in failure and "baseline" in failure
                       for failure in failures), key

    def test_min_floor_violation_fails(self):
        failures = compare(payload(speedup_exact_20=2.9), payload(), 2.0)
        assert len(failures) == 1
        assert "3" in failures[0]

    def test_memory_floor_violation_fails(self):
        failures = compare(payload(memory_reduction_sparse=3.5), payload(), 2.0)
        assert len(failures) == 1
        assert "memory" in failures[0]

    def test_ratio_ceiling_violation_fails(self):
        failures = compare(payload(sparse_time_ratio_20=1.3), payload(), 2.0)
        assert len(failures) == 1
        assert "ratio" in failures[0]

    def test_value_at_the_bound_passes(self):
        ok = payload(
            speedup_exact_20=3.0, speedup_composite=3.0,
            memory_reduction_sparse=4.0, sparse_time_ratio_20=1.2,
            noop_observer_overhead=1.1, warm_cache_speedup=5.0,
            compiled_time_ratio_20=1.2,
            ingest_sharded_memory=0.25, stats_store_warm=5.0,
            match_store_warm=10.0, sql_pair_counts=1.0,
            service_warm_speedup=2.0,
        )
        assert compare(ok, payload(), 2.0) == []

    def test_warm_cache_floor_violation_fails(self):
        failures = compare(payload(warm_cache_speedup=4.2), payload(), 2.0)
        assert len(failures) == 1
        assert "warm" in failures[0]

    def test_skipped_null_floor_passes(self):
        # compiled_time_ratio_20 is null when numba is absent: the key is
        # present (not silently dropped) but out of scope on this machine.
        current = payload(compiled_time_ratio_20=None)
        assert compare(current, payload(), 2.0) == []
        assert compare(current, payload(compiled_time_ratio_20=None), 2.0) == []

    def test_noop_overhead_ceiling_violation_fails(self):
        failures = compare(payload(noop_observer_overhead=1.2), payload(), 2.0)
        assert len(failures) == 1
        assert "observer" in failures[0]

    def test_retry_overhead_ceiling_violation_fails(self):
        failures = compare(payload(retry_overhead=1.25), payload(), 2.0)
        assert len(failures) == 1
        assert "supervision" in failures[0]

    def test_ingest_memory_ceiling_violation_fails(self):
        failures = compare(payload(ingest_sharded_memory=0.4), payload(), 2.0)
        assert len(failures) == 1
        assert "ingestion" in failures[0]

    def test_store_warm_floor_violation_fails(self):
        failures = compare(payload(stats_store_warm=3.0), payload(), 2.0)
        assert len(failures) == 1
        assert "store" in failures[0]

    def test_match_store_warm_floor_violation_fails(self):
        failures = compare(payload(match_store_warm=7.0), payload(), 2.0)
        assert len(failures) == 1
        assert "match" in failures[0]

    def test_service_warm_floor_violation_fails(self):
        failures = compare(payload(service_warm_speedup=1.5), payload(), 2.0)
        assert len(failures) == 1
        assert "daemon" in failures[0]

    def test_sql_parity_bit_violation_fails(self):
        # A parity bit, not a speedup: anything below exactly 1.0 means
        # the SQL aggregation disagreed with the Python accumulator.
        failures = compare(payload(sql_pair_counts=0.0), payload(), 2.0)
        assert len(failures) == 1
        assert "SQL" in failures[0]


class TestEnvironmentWarnings:
    def test_identical_environments_are_silent(self):
        assert environment_warnings(payload(), payload()) == []

    def test_mismatch_is_warned_per_key(self):
        current = payload(environment={"python": "3.12.0", "numpy": "2.4.6"})
        warnings = environment_warnings(current, payload())
        assert len(warnings) == 1
        assert "python" in warnings[0]
        assert "3.12.0" in warnings[0] and "3.11.7" in warnings[0]

    def test_missing_baseline_environment_is_flagged(self):
        baseline = payload()
        del baseline["environment"]
        warnings = environment_warnings(payload(), baseline)
        assert len(warnings) == 1
        assert "no environment metadata" in warnings[0]

    def test_warnings_are_not_compare_failures(self):
        current = payload(environment={"python": "3.12.0"})
        assert compare(current, payload(), 2.0) == []


class TestScenarioComparison:
    def test_disappeared_scenario_flagged(self):
        baseline = payload(
            scenarios={"x": {"mean_time": 1.0, "pair_updates": 10}}
        )
        failures = compare(payload(), baseline, 2.0)
        assert any("disappeared" in failure for failure in failures)

    def test_pair_update_growth_flagged(self):
        baseline = payload(
            scenarios={"x": {"mean_time": 1.0, "pair_updates": 10}}
        )
        current = payload(
            scenarios={"x": {"mean_time": 1.0, "pair_updates": 12}}
        )
        failures = compare(current, baseline, 2.0)
        assert any("pair_updates" in failure for failure in failures)


class TestCommittedBaseline:
    def test_baseline_has_every_floor_key(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_core.json").read_text(encoding="utf-8")
        )
        for key, bound, sense, _ in FLOORS:
            assert key in committed, key
            if committed[key] is None:
                # Skipped on the baseline machine (numba not installed);
                # the matching scenario must record why.
                continue
            if sense == "min":
                assert committed[key] >= bound, key
            else:
                assert committed[key] <= bound, key
        assert compare(committed, committed, 2.0) == []
