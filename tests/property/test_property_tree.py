"""Property-based tests of model generation and playout."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.merge import merge_run_in_log
from repro.synthesis.generator import perturbed, random_process_tree, reweighted
from repro.synthesis.playout import play_out

sizes = st.integers(min_value=1, max_value=25)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(sizes, seeds)
@settings(max_examples=40, deadline=None)
def test_generated_tree_covers_exactly_the_activities(size, seed):
    names = [f"a{i}" for i in range(size)]
    tree = random_process_tree(names, random.Random(seed))
    assert tree.activities() == frozenset(names)


@given(sizes, seeds)
@settings(max_examples=30, deadline=None)
def test_playout_traces_use_model_vocabulary(size, seed):
    names = [f"a{i}" for i in range(size)]
    rng = random.Random(seed)
    tree = random_process_tree(names, rng)
    log = play_out(tree, 15, rng)
    assert log.activities() <= frozenset(names)
    assert len(log) == 15


@given(sizes, seeds, seeds)
@settings(max_examples=30, deadline=None)
def test_reweighted_and_perturbed_preserve_vocabulary(size, seed_tree, seed_mutation):
    names = [f"a{i}" for i in range(size)]
    tree = random_process_tree(names, random.Random(seed_tree))
    rng = random.Random(seed_mutation)
    assert reweighted(tree, rng).activities() == tree.activities()
    assert perturbed(tree, rng, swaps=2).activities() == tree.activities()


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_merge_roundtrip_preserves_event_mass(seed):
    """Merging a run reduces the event count by exactly the number of
    collapsed occurrences times (run length - 1)."""
    rng = random.Random(seed)
    names = [f"a{i}" for i in range(6)]
    tree = random_process_tree(names, rng)
    log = play_out(tree, 20, rng)
    candidates = [(names[0], names[1])]
    merged, members = merge_run_in_log(log, candidates[0])
    original_events = sum(len(trace) for trace in log)
    merged_events = sum(len(trace) for trace in merged)
    merged_name = "⟨" + "+".join(candidates[0]) + "⟩"
    collapsed = sum(
        trace.activities.count(merged_name) for trace in merged
    )
    assert original_events - merged_events == collapsed
