"""Property-based differential suite: incremental vs cold composite search.

The incremental engine (delta graph merges + warm-started fixpoints +
estimation screening) is an optimisation, not an approximation: on any
input the warm-started search must reproduce the cold-started search —
the same merge trajectory, the same scores (within 1e-12; the parity is
by construction, so in practice bit-identical), the same ``pairs_fixed``
— including when a :class:`MatchBudget` runs out mid-round.
"""

import random as random_module

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.logs.log import EventLog
from repro.runtime import MatchBudget

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_log(seed: int, alphabet: str = "abcdef") -> EventLog:
    rng = random_module.Random(seed)
    traces = []
    for _ in range(rng.randint(2, 8)):
        length = rng.randint(1, 6)
        traces.append([rng.choice(alphabet) for _ in range(length)])
    return EventLog(traces, name=f"rand-{seed}")


def matcher(incremental: bool, screening: bool = False, **kwargs) -> CompositeMatcher:
    # best_first is pinned off: this suite asserts *exact* stat parity
    # (pair_updates, evaluations_aborted) between warm and cold, which
    # only holds when both scan candidates in the same static order.
    # The cold path has no bounds and always runs statically; best-first
    # reordering on the warm side changes the Bd-abort incumbent
    # trajectory (same selection, different counters) and has its own
    # differential suite in test_property_best_first.py.
    config = EMSConfig(
        incremental=incremental, screening=screening, best_first=False
    )
    defaults = dict(delta=0.0, min_confidence=0.8, max_run_length=3)
    defaults.update(kwargs)
    return CompositeMatcher(config, **defaults)


def assert_same_search(cold, warm, *, compare_stats: bool = True):
    assert cold.accepted_first == warm.accepted_first
    assert cold.accepted_second == warm.accepted_second
    assert cold.matrix.rows == warm.matrix.rows
    assert cold.matrix.cols == warm.matrix.cols
    assert np.allclose(cold.matrix.values, warm.matrix.values, rtol=0, atol=1e-12)
    assert abs(cold.average - warm.average) <= 1e-12
    assert cold.members_first == warm.members_first
    assert cold.members_second == warm.members_second
    if compare_stats:
        assert cold.stats.rounds == warm.stats.rounds
        assert cold.stats.candidates_evaluated == warm.stats.candidates_evaluated
        assert cold.stats.evaluations_aborted == warm.stats.evaluations_aborted
        assert cold.stats.pair_updates == warm.stats.pair_updates
        assert cold.stats.pairs_fixed == warm.stats.pairs_fixed


@given(seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_warm_and_cold_searches_identical(seed_first, seed_second):
    log_first = random_log(seed_first)
    log_second = random_log(seed_second, alphabet="uvwxyz")
    cold = matcher(incremental=False).match(log_first, log_second)
    warm = matcher(incremental=True).match(log_first, log_second)
    assert_same_search(cold, warm)


@given(seeds, seeds)
@settings(max_examples=15, deadline=None)
def test_shared_alphabet_searches_identical(seed_first, seed_second):
    # Overlapping vocabularies give the label-free structural similarity
    # more high-scoring candidates, exercising deeper merge trajectories.
    log_first = random_log(seed_first)
    log_second = random_log(seed_second)
    cold = matcher(incremental=False).match(log_first, log_second)
    warm = matcher(incremental=True).match(log_first, log_second)
    assert_same_search(cold, warm)


@given(seeds, seeds)
@settings(max_examples=15, deadline=None)
def test_screening_preserves_trajectory_and_scores(seed_first, seed_second):
    log_first = random_log(seed_first)
    log_second = random_log(seed_second)
    cold = matcher(incremental=False).match(log_first, log_second)
    screened = matcher(incremental=True, screening=True).match(log_first, log_second)
    # Screening may skip evaluations (so evaluation counters can differ),
    # but never a candidate that could have won: trajectory and scores match.
    assert_same_search(cold, screened, compare_stats=False)
    assert screened.stats.candidates_screened <= screened.stats.screen_checks
    assert cold.stats.candidates_evaluated >= screened.stats.candidates_evaluated


@given(seeds, seeds, st.integers(min_value=1, max_value=2000))
@settings(max_examples=20, deadline=None)
def test_budget_exhaustion_mid_round_identical(seed_first, seed_second, cap):
    log_first = random_log(seed_first)
    log_second = random_log(seed_second)
    cold = matcher(incremental=False, budget=MatchBudget(max_pair_updates=cap)).match(
        log_first, log_second
    )
    warm = matcher(incremental=True, budget=MatchBudget(max_pair_updates=cap)).match(
        log_first, log_second
    )
    assert_same_search(cold, warm)
    assert cold.runtime is not None and warm.runtime is not None
    assert cold.runtime.stage == warm.runtime.stage
    assert cold.runtime.reason == warm.runtime.reason
    assert cold.runtime.degraded == warm.runtime.degraded


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_unchanged_pruning_off_still_identical(seed):
    log_first = random_log(seed)
    log_second = random_log(seed + 7)
    cold = matcher(incremental=False, use_unchanged=False).match(log_first, log_second)
    warm = matcher(incremental=True, use_unchanged=False).match(log_first, log_second)
    assert_same_search(cold, warm)


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_bounds_off_still_identical(seed):
    log_first = random_log(seed)
    log_second = random_log(seed + 13)
    cold = matcher(incremental=False, use_bounds=False).match(log_first, log_second)
    warm = matcher(incremental=True, use_bounds=False).match(log_first, log_second)
    assert_same_search(cold, warm)
