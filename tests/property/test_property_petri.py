"""Property-based tests of the Petri-net substrate.

Invariants checked on random process trees: the conversion always yields
a workflow net; playing out always reaches the final marking with exactly
one token (soundness of the construction); PNML round-trips preserve
behaviour-relevant structure; and the net's visible vocabulary equals the
tree's activities.
"""

import io
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.petri.from_tree import tree_to_petri
from repro.petri.playout import sample_trace
from repro.petri.pnml import read_pnml, write_pnml
from repro.synthesis.generator import random_process_tree

sizes = st.integers(min_value=1, max_value=15)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build(size: int, seed: int):
    names = [f"a{i}" for i in range(size)]
    return random_process_tree(names, random.Random(seed))


@given(sizes, seeds)
@settings(max_examples=40, deadline=None)
def test_conversion_yields_workflow_net(size, seed):
    tree = build(size, seed)
    net = tree_to_petri(tree)
    assert net.is_workflow_net()
    labels = {t.label for t in net.transitions.values() if t.label is not None}
    assert labels == tree.activities()


@given(sizes, seeds, seeds)
@settings(max_examples=30, deadline=None)
def test_playout_reaches_final_marking(size, tree_seed, play_seed):
    net = tree_to_petri(build(size, tree_seed))
    # sample_trace raises on deadlock/livelock; returning proves soundness
    # of this run.  Visible events must come from the tree's vocabulary.
    activities = sample_trace(net, random.Random(play_seed), max_steps=10_000)
    labels = {t.label for t in net.transitions.values() if t.label is not None}
    assert set(activities) <= labels


@given(sizes, seeds)
@settings(max_examples=20, deadline=None)
def test_pnml_roundtrip_preserves_structure(size, seed):
    net = tree_to_petri(build(size, seed))
    buffer = io.BytesIO()
    write_pnml(net, buffer)
    buffer.seek(0)
    restored = read_pnml(buffer)
    assert restored.places == net.places
    assert set(restored.transitions) == set(net.transitions)
    for name in net.transitions:
        assert restored.preset(name) == net.preset(name)
        assert restored.postset(name) == net.postset(name)
