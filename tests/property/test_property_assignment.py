"""Property-based tests: our Hungarian vs scipy on random instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matching.assignment import (
    assignment_weight,
    max_weight_assignment,
    min_cost_assignment,
)

scipy_optimize = pytest.importorskip("scipy.optimize")

weight_matrices = st.integers(min_value=1, max_value=7).flatmap(
    lambda rows: st.integers(min_value=1, max_value=7).flatmap(
        lambda cols: arrays(
            dtype=np.float64,
            shape=(rows, cols),
            elements=st.floats(min_value=-10.0, max_value=10.0, width=64),
        )
    )
)


@given(weight_matrices)
@settings(max_examples=80, deadline=None)
def test_max_weight_matches_scipy(weights):
    ours = max_weight_assignment(weights)
    rows, cols = scipy_optimize.linear_sum_assignment(weights, maximize=True)
    assert assignment_weight(weights, ours) == pytest.approx(
        float(weights[rows, cols].sum()), abs=1e-6
    )


@given(weight_matrices)
@settings(max_examples=80, deadline=None)
def test_assignment_shape_invariants(weights):
    assignment = max_weight_assignment(weights)
    smaller_side = min(weights.shape)
    assert len(assignment) == smaller_side
    assert len({i for i, _ in assignment}) == len(assignment)
    assert len({j for _, j in assignment}) == len(assignment)
    for i, j in assignment:
        assert 0 <= i < weights.shape[0]
        assert 0 <= j < weights.shape[1]


@given(weight_matrices)
@settings(max_examples=50, deadline=None)
def test_min_cost_is_max_weight_negated(weights):
    min_assignment = min_cost_assignment(weights)
    max_assignment = max_weight_assignment(-weights)
    min_total = sum(weights[i, j] for i, j in min_assignment)
    max_total = sum(-weights[i, j] for i, j in max_assignment)
    assert min_total == pytest.approx(-max_total, abs=1e-6)
