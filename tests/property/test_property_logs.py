"""Property-based tests of the log substrate."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.csvio import read_csv, write_csv
from repro.logs.events import Trace
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics
from repro.logs.xes import read_xes, write_xes

activity = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), max_codepoint=0x2FF),
    min_size=1,
    max_size=8,
)
trace_strategy = st.lists(activity, min_size=1, max_size=8)
log_strategy = st.lists(trace_strategy, min_size=1, max_size=12)


def build_log(traces: list[list[str]]) -> EventLog:
    return EventLog(traces, name="prop")


@given(log_strategy)
@settings(max_examples=60, deadline=None)
def test_statistics_frequencies_bounded(traces):
    stats = compute_statistics(build_log(traces))
    assert all(0 < value <= 1 for value in stats.activity_frequencies.values())
    assert all(0 < value <= 1 for value in stats.pair_frequencies.values())
    # Every edge endpoint is a known activity.
    for source, target in stats.pair_frequencies:
        assert source in stats.activity_frequencies
        assert target in stats.activity_frequencies


@given(log_strategy)
@settings(max_examples=60, deadline=None)
def test_pair_frequency_bounded_by_node_frequencies(traces):
    stats = compute_statistics(build_log(traces))
    for (source, target), frequency in stats.pair_frequencies.items():
        assert frequency <= stats.activity_frequencies[source] + 1e-12
        assert frequency <= stats.activity_frequencies[target] + 1e-12


@given(log_strategy)
@settings(max_examples=40, deadline=None)
def test_xes_roundtrip(traces):
    log = build_log(traces)
    buffer = io.BytesIO()
    write_xes(log, buffer)
    buffer.seek(0)
    assert read_xes(buffer) == log


@given(log_strategy)
@settings(max_examples=40, deadline=None)
def test_csv_roundtrip(traces):
    log = build_log(traces)
    buffer = io.StringIO()
    write_csv(log, buffer)
    buffer.seek(0)
    assert read_csv(buffer) == log


@given(trace_strategy, st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_prefix_suffix_partition(activities, count):
    trace = Trace(activities)
    head = activities[:count]
    rest = trace.drop_prefix(count)
    assert list(head) + list(rest.activities) == activities


@given(trace_strategy, activity)
@settings(max_examples=60, deadline=None)
def test_replace_run_never_grows(activities, replacement):
    trace = Trace(activities)
    if len(activities) >= 2:
        run = tuple(activities[:2])
        if run[0] != run[1]:
            merged = trace.replace_run(run, replacement)
            assert len(merged) <= len(trace)


#: A log whose traces additionally carry a shard assignment, for the
#: streaming-accumulator merge property below.
sharded_log_strategy = st.lists(
    st.tuples(trace_strategy, st.integers(min_value=0, max_value=3)),
    min_size=1,
    max_size=12,
)


@given(sharded_log_strategy)
@settings(max_examples=60, deadline=None)
def test_sharded_streaming_merge_equals_batch(assigned):
    """Splitting a log across accumulators and merging loses nothing.

    Ingesting the traces into k shards in any split and folding the
    shards with :meth:`OnlineStatistics.merge` must reproduce the batch
    :func:`compute_statistics` snapshot exactly — merge adds the integer
    counters, and the final division by the identical trace count makes
    even the floats bit-equal.
    """
    from repro.logs.streaming import OnlineStatistics

    shards = [OnlineStatistics() for _ in range(4)]
    for trace, shard in assigned:
        shards[shard].add_trace(trace)
    merged = shards[0]
    for shard in shards[1:]:
        merged = merged.merge(shard)
    reversed_merge = shards[-1]
    for shard in reversed(shards[:-1]):
        reversed_merge = reversed_merge.merge(shard)
    batch = compute_statistics(build_log([trace for trace, _ in assigned]))
    assert merged.snapshot() == batch
    assert reversed_merge.snapshot() == batch  # merge order is irrelevant
