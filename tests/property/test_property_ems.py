"""Property-based tests of the EMS similarity invariants.

These check the paper's theorems on random logs: monotone convergence
(Theorem 1), early-convergence pruning being lossless (Proposition 2),
bound soundness (Proposition 6 / Corollary 7), and symmetry.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import matrix_upper_bound
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, iteration_trace
from repro.core.pruning import ConvergenceSchedule
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog

activity = st.sampled_from(list("abcdefg"))
trace_strategy = st.lists(activity, min_size=1, max_size=6)
log_strategy = st.lists(trace_strategy, min_size=1, max_size=10)
FORWARD = EMSConfig(alpha=1.0, c=0.8, direction="forward")


def graphs_from(traces_first, traces_second):
    return (
        DependencyGraph.from_log(EventLog(traces_first, name="g1")),
        DependencyGraph.from_log(EventLog(traces_second, name="g2")),
    )


@given(log_strategy, log_strategy)
@settings(max_examples=30, deadline=None)
def test_similarity_bounded_and_converged(traces_first, traces_second):
    graph_first, graph_second = graphs_from(traces_first, traces_second)
    result = EMSEngine(EMSConfig()).similarity(graph_first, graph_second)
    values = result.matrix.values
    assert (values >= 0.0).all()
    assert (values <= 1.0 + 1e-9).all()
    assert result.converged


@given(log_strategy, log_strategy)
@settings(max_examples=25, deadline=None)
def test_iteration_monotone(traces_first, traces_second):
    graph_first, graph_second = graphs_from(traces_first, traces_second)
    snapshots = iteration_trace(graph_first, graph_second, FORWARD, iterations=4)
    for earlier, later in zip(snapshots, snapshots[1:]):
        assert (later.values >= earlier.values - 1e-12).all()


@given(log_strategy, log_strategy)
@settings(max_examples=20, deadline=None)
def test_pruning_lossless(traces_first, traces_second):
    graph_first, graph_second = graphs_from(traces_first, traces_second)
    pruned = EMSEngine(EMSConfig(use_pruning=True)).similarity(graph_first, graph_second)
    unpruned = EMSEngine(EMSConfig(use_pruning=False)).similarity(
        graph_first, graph_second
    )
    np.testing.assert_allclose(
        pruned.matrix.values, unpruned.matrix.values, atol=2e-3
    )


@given(log_strategy, log_strategy)
@settings(max_examples=20, deadline=None)
def test_symmetry_of_pair_roles(traces_first, traces_second):
    """S(v1, v2) computed on (G1, G2) equals S(v2, v1) on (G2, G1)."""
    graph_first, graph_second = graphs_from(traces_first, traces_second)
    forward = EMSEngine(EMSConfig()).similarity(graph_first, graph_second)
    swapped = EMSEngine(EMSConfig()).similarity(graph_second, graph_first)
    np.testing.assert_allclose(
        forward.matrix.values, swapped.matrix.values.T, atol=1e-9
    )


@given(log_strategy, log_strategy, st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_upper_bounds_sound(traces_first, traces_second, k):
    graph_first, graph_second = graphs_from(traces_first, traces_second)
    exact = EMSEngine(FORWARD).similarity(graph_first, graph_second).matrix.values
    schedule = ConvergenceSchedule(graph_first, graph_second)
    snapshot = iteration_trace(graph_first, graph_second, FORWARD, iterations=k)[-1]
    bound = matrix_upper_bound(snapshot.values, k, FORWARD.decay, schedule.pair_levels)
    assert (bound >= exact - 1e-9).all()


@given(log_strategy, log_strategy)
@settings(max_examples=15, deadline=None)
def test_estimation_stays_in_unit_interval(traces_first, traces_second):
    graph_first, graph_second = graphs_from(traces_first, traces_second)
    result = EMSEngine(EMSConfig(estimation_iterations=1)).similarity(
        graph_first, graph_second
    )
    values = result.matrix.values
    assert (values >= -1e-9).all()
    assert (values <= 1.0 + 1e-9).all()


@given(log_strategy)
@settings(max_examples=20, deadline=None)
def test_self_similarity_diagonal_dominates_on_average(traces):
    """Matching a log against itself: the true (diagonal) pairs should be
    at least as similar on average as the off-diagonal ones."""
    graph = DependencyGraph.from_log(EventLog(traces, name="g"))
    result = EMSEngine(EMSConfig()).similarity(graph, graph)
    values = result.matrix.values
    n = values.shape[0]
    if n >= 2:
        diagonal = values.diagonal().mean()
        off = (values.sum() - values.diagonal().sum()) / (n * n - n)
        assert diagonal >= off - 1e-9
