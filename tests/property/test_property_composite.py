"""Property-based tests of the greedy composite matcher.

Invariants on random small logs: the greedy loop terminates, accepted
composite runs never overlap (the non-overlap constraint of Problem 1),
member maps partition the final vocabularies, and the final average
similarity is at least the singleton baseline's (greedy only accepts
improvements).
"""

import random as random_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_log(seed: int, alphabet: str = "abcdef") -> EventLog:
    rng = random_module.Random(seed)
    traces = []
    for _ in range(rng.randint(2, 8)):
        length = rng.randint(1, 6)
        traces.append([rng.choice(alphabet) for _ in range(length)])
    return EventLog(traces, name=f"rand-{seed}")


@given(seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_greedy_terminates_and_never_worsens(seed_first, seed_second):
    log_first = random_log(seed_first)
    log_second = random_log(seed_second, alphabet="uvwxyz")
    matcher = CompositeMatcher(
        EMSConfig(), delta=0.0, min_confidence=0.8, max_run_length=3
    )
    result = matcher.match(log_first, log_second)

    singleton_average = (
        EMSEngine(EMSConfig())
        .similarity(
            DependencyGraph.from_log(log_first), DependencyGraph.from_log(log_second)
        )
        .matrix.average()
    )
    assert result.average >= singleton_average - 1e-9


@given(seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_members_partition_vocabulary(seed_first, seed_second):
    log_first = random_log(seed_first)
    log_second = random_log(seed_second, alphabet="uvwxyz")
    matcher = CompositeMatcher(
        EMSConfig(), delta=0.001, min_confidence=0.8, max_run_length=3
    )
    result = matcher.match(log_first, log_second)

    for members, original in (
        (result.members_first, log_first.activities()),
        (result.members_second, log_second.activities()),
    ):
        covered: set[str] = set()
        for node, member_set in members.items():
            assert not (covered & member_set), "members overlap"
            covered.update(member_set)
        assert covered == original


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_matrix_rows_are_member_map_keys(seed):
    log_first = random_log(seed)
    log_second = random_log(seed + 1, alphabet="uvwxyz")
    matcher = CompositeMatcher(EMSConfig(), delta=0.001, min_confidence=0.8)
    result = matcher.match(log_first, log_second)
    assert set(result.matrix.rows) == set(result.members_first)
    assert set(result.matrix.cols) == set(result.members_second)
