"""Property suite: any shard partition reproduces the monolithic answer.

The load-bearing invariant of the out-of-core pipeline (PR 8): however a
log's traces are cut into shards — equal blocks, single-trace shards,
more shards than traces — the merged statistics and any graph built from
them are *bit-identical* to the monolithic computation.  Definition-1
statistics are integer sums over traces, and the final division by the
(identical) trace count is partition-insensitive.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics
from repro.logs.streaming import OnlineStatistics
from repro.store.blocks import TraceBlockWriter
from repro.store.sharding import shard_statistics

activity = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), max_codepoint=0x2FF),
    min_size=1,
    max_size=8,
)
trace_strategy = st.lists(activity, min_size=1, max_size=8)
log_strategy = st.lists(trace_strategy, min_size=1, max_size=12)


def monolithic(traces):
    return compute_statistics(EventLog(traces, name="prop"))


def spill(tmp_path, traces, block_traces):
    writer = TraceBlockWriter(tmp_path / "blocks", block_traces=block_traces)
    for index, activities in enumerate(traces):
        writer.add(f"case-{index}", activities)
    return writer.finish()


@given(log_strategy, st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_any_block_size_matches_monolithic(tmp_path_factory, traces, block_traces):
    """Every block size — including 1 (single-trace shards) and sizes
    exceeding the trace count (shards > traces degenerates to one block,
    and a requested shard count larger than the log is harmless)."""
    tmp_path = tmp_path_factory.mktemp("shards")
    blocks = spill(tmp_path, traces, block_traces)
    assert shard_statistics(blocks).snapshot() == monolithic(traces)


@given(log_strategy)
@settings(max_examples=40, deadline=None)
def test_single_trace_shards_match_monolithic(tmp_path_factory, traces):
    tmp_path = tmp_path_factory.mktemp("shards")
    blocks = spill(tmp_path, traces, block_traces=1)
    assert len(blocks) == len(traces)
    assert shard_statistics(blocks).snapshot() == monolithic(traces)


@given(
    st.lists(
        st.tuples(trace_strategy, st.integers(min_value=0, max_value=5)),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_arbitrary_partition_graph_bit_identical(assigned):
    """Any assignment of traces to shards — uneven, empty shards, all in
    one — folded with ``merge_into`` rebuilds the monolithic graph with
    bit-equal edge frequencies."""
    shards = [OnlineStatistics() for _ in range(6)]
    for trace, shard in assigned:
        shards[shard].add_trace(trace)
    total = OnlineStatistics()
    for shard in shards:
        if shard.trace_count:
            shard.merge_into(total)
    traces = [trace for trace, _ in assigned]
    batch = monolithic(traces)
    assert total.snapshot() == batch
    from_shards = DependencyGraph.from_statistics(total.snapshot(), name="prop")
    from_batch = DependencyGraph.from_log(EventLog(traces, name="prop"))
    assert from_shards.nodes == from_batch.nodes
    assert from_shards.real_edges == from_batch.real_edges


@given(
    st.lists(
        st.tuples(trace_strategy, st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_merge_into_equals_pure_merge(assigned):
    """The in-place fold and the pure merge are the same function."""
    pure_shards = [OnlineStatistics() for _ in range(4)]
    fold_shards = [OnlineStatistics() for _ in range(4)]
    for trace, shard in assigned:
        pure_shards[shard].add_trace(trace)
        fold_shards[shard].add_trace(trace)
    pure = OnlineStatistics()
    for shard in pure_shards:
        pure = pure.merge(shard)
    folded = OnlineStatistics()
    for shard in fold_shards:
        shard.merge_into(folded)
    assert folded.snapshot() == pure.snapshot()
    assert folded.snapshot() == monolithic([trace for trace, _ in assigned])


@given(log_strategy, st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_seeded_counts_continue_exactly(traces, split):
    """Seeding an accumulator from stored integer counts and adding the
    remaining traces equals ingesting everything fresh — the append fast
    path's soundness, minus the I/O."""
    cut = min(split, len(traces))
    prefix = OnlineStatistics()
    for trace in traces[:cut]:
        prefix.add_trace(trace)
    resumed = OnlineStatistics()
    resumed.seed_counts(
        prefix.trace_count,
        dict(prefix.activity_counts),
        dict(prefix.pair_counts),
    )
    for trace in traces[cut:]:
        resumed.add_trace(trace)
    assert resumed.snapshot() == monolithic(traces)
