"""Property-based tests of the observability subsystem.

Invariants on random small logs: every recorded trace is balanced
(all spans closed) and properly nested (children lie within their
parents), the per-stage exclusive times partition the total, and the
``composite.round[r]`` spans account for the greedy search's share of
the reported ``wall_time`` — they can never exceed it.
"""

import random as random_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.logs.log import EventLog
from repro.obs import MetricsRegistry, Observer, Tracer, stage_timings

seeds = st.integers(min_value=0, max_value=2**31 - 1)

#: Tolerance for float accumulation across span arithmetic, seconds.
EPSILON = 1e-6


def random_log(seed: int, alphabet: str = "abcdef") -> EventLog:
    rng = random_module.Random(seed)
    traces = []
    for _ in range(rng.randint(2, 8)):
        length = rng.randint(1, 6)
        traces.append([rng.choice(alphabet) for _ in range(length)])
    return EventLog(traces, name=f"rand-{seed}")


def traced_match(seed_first: int, seed_second: int):
    observer = Observer(tracer=Tracer(), metrics=MetricsRegistry())
    matcher = CompositeMatcher(
        EMSConfig(), delta=0.001, min_confidence=0.8, max_run_length=3,
        observer=observer,
    )
    result = matcher.match(
        random_log(seed_first), random_log(seed_second, alphabet="uvwxyz")
    )
    return observer, result


@given(seeds, seeds)
@settings(max_examples=15, deadline=None)
def test_traces_are_balanced_and_nested(seed_first, seed_second):
    observer, _ = traced_match(seed_first, seed_second)
    tracer = observer.tracer
    assert tracer.open_depth == 0
    for span in tracer.all_spans():
        assert span.end is not None, f"unclosed span {span.name!r}"
        assert span.end >= span.start
        for child in span.children:
            assert span.start <= child.start <= child.end <= span.end, (
                f"child {child.name!r} escapes parent {span.name!r}"
            )


@given(seeds, seeds)
@settings(max_examples=15, deadline=None)
def test_stage_times_partition_the_total(seed_first, seed_second):
    observer, _ = traced_match(seed_first, seed_second)
    roots = observer.tracer.roots
    total = sum(root.duration for root in roots)
    stage_sum = sum(
        entry["seconds"] for entry in stage_timings(roots).values()
    )
    assert abs(stage_sum - total) <= EPSILON + 1e-3 * total


@given(seeds, seeds)
@settings(max_examples=15, deadline=None)
def test_round_spans_fit_inside_the_wall_time(seed_first, seed_second):
    observer, result = traced_match(seed_first, seed_second)
    wall_time = result.runtime.wall_time
    round_seconds = sum(
        span.duration
        for span in observer.tracer.all_spans()
        if span.name.startswith("composite.round[")
    )
    # The rounds are a subset of the run (initial similarity, graph
    # builds and bookkeeping also take time), so their sum must fit
    # within the reported wall time — with float tolerance only.
    assert 0.0 <= round_seconds <= wall_time + EPSILON
    # And the trace as a whole accounts for the run: no root span can
    # outlast the wall clock that enclosed it.
    for root in observer.tracer.roots:
        assert root.duration <= wall_time + EPSILON
