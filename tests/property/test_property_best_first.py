"""Property suite: best-first candidate scheduling vs static order.

Best-first ordering plus the global bound cutoff is a pure scheduling
change: on any input, with screening on or off, it must select the same
merges round for round and land on the same final scores as the static
discovery-order scan — the estimation bound is sound (a cut candidate
provably cannot beat the incumbent) and equal-average ties resolve to
the lowest discovery position, exactly the candidate the static
strict-improvement scan keeps.
"""

import random as random_module

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, LabelMatrixCache
from repro.core.incremental import IncrementalSearchState
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.obs import MetricsRegistry, Observer, Tracer

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_log(seed: int, alphabet: str = "abcdef") -> EventLog:
    rng = random_module.Random(seed)
    traces = []
    for _ in range(rng.randint(2, 8)):
        length = rng.randint(1, 6)
        traces.append([rng.choice(alphabet) for _ in range(length)])
    return EventLog(traces, name=f"rand-{seed}")


def matcher(best_first: bool, screening: bool, **kwargs) -> CompositeMatcher:
    config = EMSConfig(incremental=True, screening=screening, best_first=best_first)
    defaults = dict(delta=0.0, min_confidence=0.8, max_run_length=3)
    defaults.update(kwargs)
    return CompositeMatcher(config, **defaults)


def assert_same_selection(static, best):
    assert static.accepted_first == best.accepted_first
    assert static.accepted_second == best.accepted_second
    assert static.matrix.rows == best.matrix.rows
    assert static.matrix.cols == best.matrix.cols
    assert np.array_equal(static.matrix.values, best.matrix.values)
    assert static.members_first == best.members_first
    assert static.members_second == best.members_second
    assert static.stats.rounds == best.stats.rounds


@given(seeds, seeds, st.booleans())
@settings(max_examples=25, deadline=None)
def test_best_first_matches_static_order(seed_first, seed_second, screening):
    log_first = random_log(seed_first)
    log_second = random_log(seed_second)
    static = matcher(best_first=False, screening=screening).match(
        log_first, log_second
    )
    best = matcher(best_first=True, screening=screening).match(
        log_first, log_second
    )
    assert_same_selection(static, best)
    # Best-first may skip evaluations, never add any.
    assert best.stats.candidates_evaluated <= static.stats.candidates_evaluated


@given(seeds, seeds)
@settings(max_examples=15, deadline=None)
def test_best_first_matches_cold_rebuild_search(seed_first, seed_second):
    # Transitivity check straight against the ground truth: the cold
    # full-rebuild search with no scheduling at all.
    log_first = random_log(seed_first)
    log_second = random_log(seed_second, alphabet="uvwxyz")
    cold = CompositeMatcher(
        EMSConfig(incremental=False),
        delta=0.0, min_confidence=0.8, max_run_length=3,
    ).match(log_first, log_second)
    best = matcher(best_first=True, screening=True).match(log_first, log_second)
    assert_same_selection(cold, best)


@given(seeds, seeds, st.sampled_from([0.0, 0.005, 0.05]))
@settings(max_examples=15, deadline=None)
def test_delta_thresholds_preserved(seed_first, seed_second, delta):
    log_first = random_log(seed_first)
    log_second = random_log(seed_second)
    static = matcher(best_first=False, screening=True, delta=delta).match(
        log_first, log_second
    )
    best = matcher(best_first=True, screening=True, delta=delta).match(
        log_first, log_second
    )
    assert_same_selection(static, best)


# ----------------------------------------------------------------------
# Deterministic span-count demonstration (the acceptance criterion).
# ----------------------------------------------------------------------
def _structured_pair() -> tuple[EventLog, EventLog]:
    """A log pair with one frequent and one rare planted chain."""
    rng = random_module.Random(5)
    first, second = [], []
    for _ in range(200):
        trace = ["s"]
        for step in range(3):
            trace.append(f"a{step}" if rng.random() < 0.7 else f"b{step}")
        trace.append("e")
        first.append(trace)
        merged = list(trace)
        if rng.random() < 0.5:
            merged[2:2] = ["x0", "x1"]
        if rng.random() < 0.04:
            merged[1:1] = ["y0", "y1"]
        second.append(merged)
    return EventLog(first, name="plain"), EventLog(second, name="chained")


def _count_spans(spans, name):
    return sum(
        (span.name == name) + _count_spans(span.children, name)
        for span in spans
    )


def test_cutoff_reduces_evaluate_spans_with_identical_selection():
    """Pick delta between the two candidates' bounds: the static scan
    still walks (and span-wraps) the screened candidate, the best-first
    cutoff never touches it — fewer ``candidate.evaluate`` spans, same
    selected correspondences.  The delta is calibrated from the bounds
    themselves so the test cannot rot as the bound tightens."""
    log_first, log_second = _structured_pair()
    config = EMSConfig(incremental=True, screening=True)
    graph_first = DependencyGraph.from_log(log_first)
    graph_second = DependencyGraph.from_log(log_second)
    current = EMSEngine(config).similarity(graph_first, graph_second)
    probe = CompositeMatcher(config, min_confidence=0.9, max_run_length=3)
    state = IncrementalSearchState(
        config, probe.base_label, 0.0, True, True, LabelMatrixCache(8)
    )
    state.reset((
        (log_first, {a: frozenset({a}) for a in log_first.activities()},
         graph_first),
        (log_second, {a: frozenset({a}) for a in log_second.activities()},
         graph_second),
    ))
    from repro.core.composite import discover_candidates

    runs = discover_candidates(log_second, min_confidence=0.9, max_run_length=3)
    bounds = sorted(state.candidate_bound(1, run) for run in runs)
    assert len(bounds) >= 2 and bounds[0] < bounds[-1]
    # target = current_average + delta lands strictly between the bounds:
    # the weak candidate is provably hopeless, the strong one is not.
    delta = (bounds[0] + bounds[-1]) / 2 - current.matrix.average()

    results = {}
    for best_first in (False, True):
        observer = Observer(tracer=Tracer(), metrics=MetricsRegistry())
        result = CompositeMatcher(
            EMSConfig(incremental=True, screening=True, best_first=best_first),
            delta=delta, min_confidence=0.9, max_run_length=3,
            observer=observer,
        ).match(log_first, log_second)
        spans = _count_spans(observer.tracer.roots, "candidate.evaluate")
        results[best_first] = (result, spans)

    static, static_spans = results[False]
    best, best_spans = results[True]
    assert_same_selection(static, best)
    assert best_spans < static_spans
    assert best.stats.candidates_screened >= 1
