"""Property suite: interrupt + resume == one uninterrupted run.

The durable-execution contract (S3): a composite search interrupted at
*any* round boundary and resumed from its checkpoint must finish with
bit-identical correspondences, similarity values, stats counters, and
runtime-report structure — as if the interruption never happened.  The
interrupt is injected deterministically through the fault harness
(``search.round``/``interrupt``), which shares the code path a real
SIGTERM takes through :class:`~repro.runtime.InterruptGuard`.
"""

import dataclasses
import random as random_module
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.logs.log import EventLog
from repro.runtime import CheckpointManager, FaultPlan, FaultSpec

seeds = st.integers(min_value=0, max_value=2**31 - 1)
interrupt_rounds = st.integers(min_value=1, max_value=4)


def random_log(seed: int, alphabet: str = "abcdef") -> EventLog:
    rng = random_module.Random(seed)
    traces = []
    for _ in range(rng.randint(2, 8)):
        length = rng.randint(1, 6)
        traces.append([rng.choice(alphabet) for _ in range(length)])
    return EventLog(traces, name=f"rand-{seed}")


def _matcher(**kwargs) -> CompositeMatcher:
    defaults = dict(delta=0.0, min_confidence=0.8, max_run_length=3)
    defaults.update(kwargs)
    return CompositeMatcher(EMSConfig(), **defaults)


def _strip_timing(report_dict):
    return {k: v for k, v in report_dict.items() if k != "wall_time"}


@settings(max_examples=15, deadline=None)
@given(seed=seeds, interrupt_round=interrupt_rounds)
def test_interrupted_then_resumed_equals_uninterrupted(seed, interrupt_round):
    pair = random_log(seed), random_log(seed + 1, alphabet="uvwxyz")
    baseline = _matcher().match(*pair)

    with tempfile.TemporaryDirectory() as scratch:
        plan = FaultPlan(specs=(
            FaultSpec(site="search.round", kind="interrupt",
                      round=interrupt_round),
        ))
        interrupted = _matcher(
            checkpoints=CheckpointManager(scratch), faults=plan,
        ).match(*pair)
        if baseline.stats.rounds >= interrupt_round:
            assert interrupted.runtime.stage == "partial"
            assert interrupted.runtime.reason == "interrupted"
            assert interrupted.stats.rounds == interrupt_round - 1
        resumed = _matcher(
            checkpoints=CheckpointManager(scratch), resume=True,
        ).match(*pair)

    assert resumed.accepted_first == baseline.accepted_first
    assert resumed.accepted_second == baseline.accepted_second
    assert resumed.members_first == baseline.members_first
    assert resumed.members_second == baseline.members_second
    np.testing.assert_array_equal(
        resumed.matrix.values, baseline.matrix.values
    )
    assert resumed.matrix.rows == baseline.matrix.rows
    assert resumed.matrix.cols == baseline.matrix.cols
    assert dataclasses.asdict(resumed.stats) == dataclasses.asdict(baseline.stats)
    assert _strip_timing(resumed.runtime.to_dict()) == _strip_timing(
        baseline.runtime.to_dict()
    )


@settings(max_examples=10, deadline=None)
@given(seed=seeds, interrupt_round=interrupt_rounds)
def test_double_interrupt_chain_still_converges(seed, interrupt_round):
    """Interrupt, resume, interrupt later, resume again — still identical."""
    pair = random_log(seed), random_log(seed + 1, alphabet="uvwxyz")
    baseline = _matcher().match(*pair)

    with tempfile.TemporaryDirectory() as scratch:
        for stop_at in (interrupt_round, interrupt_round + 1):
            plan = FaultPlan(specs=(
                FaultSpec(site="search.round", kind="interrupt", round=stop_at),
            ))
            _matcher(
                checkpoints=CheckpointManager(scratch), faults=plan,
                resume=True,
            ).match(*pair)
        final = _matcher(
            checkpoints=CheckpointManager(scratch), resume=True,
        ).match(*pair)

    assert final.accepted_first == baseline.accepted_first
    assert final.accepted_second == baseline.accepted_second
    np.testing.assert_array_equal(final.matrix.values, baseline.matrix.values)
    assert dataclasses.asdict(final.stats) == dataclasses.asdict(baseline.stats)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, interrupt_round=interrupt_rounds)
def test_corrupted_checkpoint_falls_back_to_cold_identical_run(
    seed, interrupt_round
):
    """Bit rot between interrupt and resume: cold start, same answer."""
    pair = random_log(seed), random_log(seed + 1, alphabet="uvwxyz")
    baseline = _matcher().match(*pair)

    with tempfile.TemporaryDirectory() as scratch:
        plan = FaultPlan(specs=(
            FaultSpec(site="search.round", kind="interrupt",
                      round=interrupt_round),
            FaultSpec(site="checkpoint.write", kind="corrupt"),
        ))
        _matcher(
            checkpoints=CheckpointManager(scratch, faults=plan), faults=plan,
        ).match(*pair)
        resumed = _matcher(
            checkpoints=CheckpointManager(scratch), resume=True,
        ).match(*pair)

    assert resumed.accepted_first == baseline.accepted_first
    np.testing.assert_array_equal(resumed.matrix.values, baseline.matrix.values)
    assert dataclasses.asdict(resumed.stats) == dataclasses.asdict(baseline.stats)
