"""Property-based tests of the evaluation metrics and label similarities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.evaluation import Correspondence, evaluate
from repro.similarity.labels import (
    JaccardTokenSimilarity,
    LevenshteinSimilarity,
    QGramCosineSimilarity,
)
from repro.similarity.levenshtein import levenshtein_distance

activity = st.text(min_size=1, max_size=6)
correspondence = st.builds(
    Correspondence.one_to_one, left=activity, right=activity
)
correspondences = st.lists(correspondence, min_size=0, max_size=8)


@given(correspondences, correspondences)
@settings(max_examples=80, deadline=None)
def test_metric_bounds(truth, found):
    result = evaluate(truth, found)
    assert 0.0 <= result.precision <= 1.0
    assert 0.0 <= result.recall <= 1.0
    assert 0.0 <= result.f_measure <= 1.0
    lower = min(result.precision, result.recall)
    upper = max(result.precision, result.recall)
    assert result.f_measure == 0.0 or (
        lower - 1e-9 <= result.f_measure <= upper + 1e-9
    )


@given(correspondences)
@settings(max_examples=50, deadline=None)
def test_perfect_match_scores_one(truth):
    result = evaluate(truth, truth)
    if truth:
        assert result.f_measure == 1.0


@given(correspondences, correspondences)
@settings(max_examples=50, deadline=None)
def test_hits_bounded_by_sizes(truth, found):
    result = evaluate(truth, found)
    assert result.hit_count <= result.truth_size
    assert result.hit_count <= result.found_size


texts = st.text(max_size=12)


@given(texts, texts)
@settings(max_examples=80, deadline=None)
def test_levenshtein_metric_axioms(first, second):
    assert levenshtein_distance(first, second) == levenshtein_distance(second, first)
    assert (levenshtein_distance(first, second) == 0) == (first == second)
    assert levenshtein_distance(first, second) <= max(len(first), len(second))


@given(texts, texts)
@settings(max_examples=60, deadline=None)
def test_label_similarities_bounded_and_symmetric(first, second):
    for scorer in (QGramCosineSimilarity(), LevenshteinSimilarity(), JaccardTokenSimilarity()):
        value = scorer(first, second)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert abs(value - scorer(second, first)) < 1e-12
