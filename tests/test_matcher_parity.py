"""Cross-implementation parity checks.

The specialized EMS composite matcher (with Uc/Bd prunings) and the
generic greedy wrapper around the singleton EMS matcher implement the
same Algorithm 2 objective; on the Figure 1 fixture they must agree on
what gets merged.  Likewise, the composite matcher's singleton
``evaluate`` must be the plain EMS evaluation.
"""

import pytest

from repro.baselines.composite_wrapper import GreedyCompositeWrapper
from repro.core.config import EMSConfig
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.matching.evaluation import evaluate


class TestWrapperVsSpecialized:
    def test_same_composite_found_on_figure1(self, fig1_logs, fig1_truth):
        specialized = EMSCompositeMatcher(
            delta=0.005, min_confidence=0.9, max_run_length=2
        ).match(*fig1_logs)
        wrapped = GreedyCompositeWrapper(
            EMSMatcher(), delta=0.005, min_confidence=0.9, max_run_length=2
        ).match(*fig1_logs)
        specialized_composites = {
            c.left for c in specialized.correspondences if c.is_composite()
        }
        wrapped_composites = {
            c.left for c in wrapped.correspondences if c.is_composite()
        }
        assert specialized_composites == wrapped_composites == {frozenset({"C", "D"})}
        assert evaluate(fig1_truth, specialized.correspondences).f_measure == (
            evaluate(fig1_truth, wrapped.correspondences).f_measure
        )

    def test_objectives_agree(self, fig1_logs):
        specialized = EMSCompositeMatcher(
            delta=0.005, min_confidence=0.9, max_run_length=2
        ).match(*fig1_logs)
        wrapped = GreedyCompositeWrapper(
            EMSMatcher(), delta=0.005, min_confidence=0.9, max_run_length=2
        ).match(*fig1_logs)
        assert specialized.objective == pytest.approx(wrapped.objective, abs=1e-4)


class TestEvaluateDelegation:
    def test_composite_evaluate_is_singleton_evaluation(self, fig1_logs):
        config = EMSConfig()
        composite = EMSCompositeMatcher(config)
        singleton = EMSMatcher(config)
        members_first = {a: frozenset({a}) for a in fig1_logs[0].activities()}
        members_second = {a: frozenset({a}) for a in fig1_logs[1].activities()}
        from_composite = composite.evaluate(
            *fig1_logs, members_first, members_second
        )
        from_singleton = singleton.evaluate(
            *fig1_logs, members_first, members_second
        )
        assert from_composite.objective == pytest.approx(from_singleton.objective)
        assert from_composite.pairs == from_singleton.pairs
