"""Tests for Jaro / Jaro-Winkler similarity."""

import pytest

from repro.similarity.jaro import (
    JaroWinklerSimilarity,
    jaro_similarity,
    jaro_winkler_similarity,
)


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0
        assert jaro_similarity("", "") == 1.0

    def test_classic_martha_marhta(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_classic_dixon_dicksonx(self):
        assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_symmetric(self):
        assert jaro_similarity("dwayne", "duane") == pytest.approx(
            jaro_similarity("duane", "dwayne")
        )


class TestJaroWinkler:
    def test_prefix_boost(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted > plain

    def test_classic_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
            0.9611, abs=1e-3
        )

    def test_prefix_scale_validated(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)
        with pytest.raises(ValueError):
            JaroWinklerSimilarity(prefix_scale=0.3)

    def test_label_similarity_contract(self):
        scorer = JaroWinklerSimilarity()
        value = scorer("Check Inventory", "check inventory")
        assert value == 1.0  # case-insensitive
        assert 0.0 <= scorer("abc", "xyz") <= 1.0
