"""Tests for Levenshtein distance and similarity."""

import pytest

from repro.similarity.levenshtein import levenshtein_distance, levenshtein_similarity


class TestDistance:
    @pytest.mark.parametrize(
        ("first", "second", "expected"),
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("abc", "abc", 0),
            ("abc", "acb", 2),
        ],
    )
    def test_known_distances(self, first, second, expected):
        assert levenshtein_distance(first, second) == expected

    def test_symmetry(self):
        assert levenshtein_distance("abcde", "xbcz") == levenshtein_distance("xbcz", "abcde")

    def test_triangle_inequality(self):
        words = ["order", "older", "bolder", ""]
        for a in words:
            for b in words:
                for c in words:
                    assert levenshtein_distance(a, c) <= (
                        levenshtein_distance(a, b) + levenshtein_distance(b, c)
                    )


class TestSimilarity:
    def test_identical(self):
        assert levenshtein_similarity("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_case_insensitive(self):
        assert levenshtein_similarity("ABC", "abc") == 1.0

    def test_range(self):
        assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
