"""Tests for q-gram tokenization and cosine similarity."""

import pytest

from repro.similarity.qgrams import cosine, qgram_cosine, qgrams


class TestQGrams:
    def test_empty_string(self):
        assert qgrams("") == {}

    def test_q_validated(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_padding_counts(self):
        grams = qgrams("ab", q=2)
        # padded: _ab_ -> "_a", "ab", "b_"
        assert sum(grams.values()) == 3
        assert grams["ab"] == 1

    def test_case_insensitive(self):
        assert qgrams("ABC") == qgrams("abc")

    def test_q1_is_character_counts(self):
        grams = qgrams("aab", q=1)
        assert grams["a"] == 2
        assert grams["b"] == 1


class TestCosine:
    def test_identical_is_one(self):
        assert qgram_cosine("check inventory", "check inventory") == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        assert qgram_cosine("aaaa", "zzzz") == pytest.approx(0.0)

    def test_empty_is_zero(self):
        assert qgram_cosine("", "abc") == 0.0
        assert cosine(qgrams(""), qgrams("")) == 0.0

    def test_symmetry(self):
        first, second = "Check Inventory", "Inventory Check"
        assert qgram_cosine(first, second) == pytest.approx(qgram_cosine(second, first))

    def test_shared_words_score_high(self):
        related = qgram_cosine("Check Inventory", "Inventory Checking")
        unrelated = qgram_cosine("Check Inventory", "Paid by Cash")
        assert related > 0.5 > unrelated

    def test_range(self):
        for first, second in [("abc", "abd"), ("a", "ab"), ("xy", "yx")]:
            assert 0.0 <= qgram_cosine(first, second) <= 1.0
