"""Tests for Monge-Elkan similarity."""

import pytest

from repro.similarity.labels import ExactSimilarity
from repro.similarity.monge_elkan import (
    MongeElkanSimilarity,
    monge_elkan,
    symmetric_monge_elkan,
)


class TestMongeElkan:
    def test_identical(self):
        assert monge_elkan("check inventory", "check inventory") == pytest.approx(1.0)

    def test_token_reordering_is_free(self):
        assert monge_elkan("check inventory", "inventory check") == pytest.approx(1.0)

    def test_empty_cases(self):
        assert monge_elkan("", "") == 1.0
        assert monge_elkan("", "x") == 0.0
        assert monge_elkan("x", "") == 0.0

    def test_asymmetry(self):
        # Every token of "check" matches into the longer label perfectly,
        # but not vice versa.
        with_exact = lambda a, b: monge_elkan(a, b, ExactSimilarity())
        assert with_exact("check", "check inventory") == 1.0
        assert with_exact("check inventory", "check") == 0.5

    def test_inner_similarity_pluggable(self):
        loose = monge_elkan("chek inventory", "check inventory")
        strict = monge_elkan("chek inventory", "check inventory", ExactSimilarity())
        assert loose > strict

    def test_symmetric_variant(self):
        forward = monge_elkan("check", "check inventory", ExactSimilarity())
        backward = monge_elkan("check inventory", "check", ExactSimilarity())
        combined = symmetric_monge_elkan("check", "check inventory", ExactSimilarity())
        assert combined == pytest.approx((forward + backward) / 2)


class TestLabelSimilarityContract:
    def test_bounded_and_symmetric(self):
        scorer = MongeElkanSimilarity()
        pairs = [
            ("Check Inventory", "Inventory Checking & Validation"),
            ("Paid by Cash", "Cash Payment"),
            ("a", "zzz"),
        ]
        for first, second in pairs:
            value = scorer(first, second)
            assert 0.0 <= value <= 1.0
            assert value == pytest.approx(scorer(second, first))

    def test_related_labels_score_high(self):
        scorer = MongeElkanSimilarity()
        assert scorer("Check Inventory", "Inventory Check") > 0.9
        assert scorer("Check Inventory", "Paid by Cash") < 0.6

    def test_cache_consistency(self):
        scorer = MongeElkanSimilarity()
        first = scorer("abc def", "def abc")
        assert scorer("def abc", "abc def") == first
