"""Tests for the pluggable label similarity functions."""

import pytest

from repro.similarity.labels import (
    CompositeAwareSimilarity,
    ExactSimilarity,
    JaccardTokenSimilarity,
    LabelSimilarity,
    LevenshteinSimilarity,
    OpaqueSimilarity,
    QGramCosineSimilarity,
)

ALL_SIMILARITIES = [
    OpaqueSimilarity(),
    ExactSimilarity(),
    QGramCosineSimilarity(),
    LevenshteinSimilarity(),
    JaccardTokenSimilarity(),
]


class TestProtocolContract:
    @pytest.mark.parametrize("scorer", ALL_SIMILARITIES, ids=lambda s: type(s).__name__)
    def test_symmetric_and_bounded(self, scorer):
        pairs = [("Check Inventory", "Inventory Check"), ("a", "b"), ("", "x")]
        for first, second in pairs:
            value = scorer(first, second)
            assert 0.0 <= value <= 1.0
            assert value == pytest.approx(scorer(second, first))

    @pytest.mark.parametrize("scorer", ALL_SIMILARITIES, ids=lambda s: type(s).__name__)
    def test_satisfies_protocol(self, scorer):
        assert isinstance(scorer, LabelSimilarity)


class TestIndividual:
    def test_opaque_always_zero(self):
        assert OpaqueSimilarity()("same", "same") == 0.0

    def test_exact(self):
        assert ExactSimilarity()("Ship Goods", "ship goods") == 1.0
        assert ExactSimilarity()("Ship Goods", "Ship Good") == 0.0

    def test_qgram_caches_consistently(self):
        scorer = QGramCosineSimilarity()
        first = scorer("abcdef", "abcxyz")
        assert scorer("abcxyz", "abcdef") == first

    def test_qgram_validates_q(self):
        with pytest.raises(ValueError):
            QGramCosineSimilarity(q=0)

    def test_jaccard_tokens(self):
        assert JaccardTokenSimilarity()("check order", "order check") == 1.0
        assert JaccardTokenSimilarity()("check order", "pay invoice") == 0.0
        assert JaccardTokenSimilarity()("", "") == 1.0


class TestCompositeAware:
    def test_scores_through_members(self):
        members_first = {"⟨C+D⟩": frozenset({"Check Inventory", "Validate"})}
        members_second = {"IV": frozenset({"Inventory Checking & Validation"})}
        scorer = CompositeAwareSimilarity(
            QGramCosineSimilarity(), members_first, members_second
        )
        composite_score = scorer("⟨C+D⟩", "IV")
        raw_score = QGramCosineSimilarity()("⟨C+D⟩", "Inventory Checking & Validation")
        assert composite_score > raw_score

    def test_plain_nodes_fall_through(self):
        scorer = CompositeAwareSimilarity(ExactSimilarity(), {}, {})
        assert scorer("a", "a") == 1.0

    def test_best_pair_average(self):
        members_first = {"m": frozenset({"alpha", "zzz"})}
        members_second = {"n": frozenset({"alpha", "qqq"})}
        scorer = CompositeAwareSimilarity(ExactSimilarity(), members_first, members_second)
        # alpha matches exactly, zzz/qqq match nothing: average = 0.5.
        assert scorer("m", "n") == pytest.approx(0.5)

    def test_symmetric_coverage(self):
        # left side {alpha, zzz}: coverage (1 + 0)/2 = 0.5;
        # right side {alpha}: coverage 1.0; symmetric average = 0.75.
        members_first = {"m": frozenset({"alpha", "zzz"})}
        scorer = CompositeAwareSimilarity(ExactSimilarity(), members_first, {})
        assert scorer("m", "alpha") == pytest.approx(0.75)

    def test_merging_unrelated_members_lowers_score(self):
        # The anti-runaway property the greedy loop relies on.
        base = QGramCosineSimilarity()
        merged = CompositeAwareSimilarity(
            base, {"⟨a+b⟩": frozenset({"approve claim", "zzzz qqqq"})}, {}
        )
        plain = CompositeAwareSimilarity(base, {}, {})
        assert merged("⟨a+b⟩", "claim approval") < plain("approve claim", "claim approval")
