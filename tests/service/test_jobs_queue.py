"""Unit tests: job-spec validation, content identity, the SQLite queue."""

import threading

import pytest

from repro.exceptions import JobSpecError
from repro.obs import MetricsRegistry, Observer
from repro.service import (
    JobQueue,
    STATE_DEAD,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    job_content_key,
    validate_spec,
)

from .conftest import write_csv


@pytest.fixture()
def pair(tmp_path):
    first = write_csv(tmp_path / "a.csv", [["x", "y"]])
    second = write_csv(tmp_path / "b.csv", [["u", "v"]])
    return first, second


def spec_for(pair, **overrides):
    submission = {"log_first": str(pair[0]), "log_second": str(pair[1])}
    submission.update(overrides)
    return validate_spec(submission)


class TestValidateSpec:
    def test_fills_defaults(self, pair):
        spec = spec_for(pair)
        assert spec["format"] == "auto"
        assert spec["threshold"] == 0.0
        assert spec["composite"] is False
        assert spec["fault_plan"] is None

    def test_rejects_unknown_fields(self, pair):
        with pytest.raises(JobSpecError, match="unknown job spec field"):
            validate_spec(
                {"log_first": str(pair[0]), "log_second": str(pair[1]),
                 "treshold": 0.5}
            )

    def test_rejects_missing_required(self):
        with pytest.raises(JobSpecError, match="missing required field"):
            validate_spec({"log_first": "a.csv"})

    def test_rejects_wrong_types(self, pair):
        with pytest.raises(JobSpecError, match="has type"):
            validate_spec(
                {"log_first": str(pair[0]), "log_second": str(pair[1]),
                 "threshold": "high"}
            )
        with pytest.raises(JobSpecError, match="must not be a boolean"):
            validate_spec(
                {"log_first": str(pair[0]), "log_second": str(pair[1]),
                 "pair_budget": True}
            )

    def test_rejects_bad_choice(self, pair):
        with pytest.raises(JobSpecError, match="must be one of"):
            spec_for(pair, format="parquet")

    def test_rejects_missing_file(self, tmp_path, pair):
        with pytest.raises(JobSpecError, match="no such file"):
            validate_spec(
                {"log_first": str(tmp_path / "nope.csv"),
                 "log_second": str(pair[1])}
            )

    def test_rejects_non_object(self):
        with pytest.raises(JobSpecError, match="JSON object"):
            validate_spec(["a.csv", "b.csv"])


class TestContentKey:
    def test_same_content_different_path_same_key(self, tmp_path, pair):
        copy = tmp_path / "copy.csv"
        copy.write_bytes(pair[0].read_bytes())
        spec_a = spec_for(pair)
        spec_b = validate_spec(
            {"log_first": str(copy), "log_second": str(pair[1])}
        )
        assert job_content_key(spec_a) == job_content_key(spec_b)

    def test_knobs_change_the_key(self, pair):
        assert job_content_key(spec_for(pair)) != job_content_key(
            spec_for(pair, threshold=0.5)
        )

    def test_fault_plan_does_not_change_the_key(self, pair):
        # Faults script how a run is *tested*, not what it computes; the
        # kill-and-restart path needs attempt 2 to keep attempt 1's id.
        plan = {"specs": [{"site": "search.round", "kind": "interrupt"}]}
        assert job_content_key(spec_for(pair)) == job_content_key(
            spec_for(pair, fault_plan=plan)
        )


class TestJobQueue:
    @pytest.fixture()
    def queue(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.db")
        yield queue
        queue.close()

    def test_submit_claim_finish(self, queue, pair):
        record, created = queue.submit(spec_for(pair), source="http")
        assert created and record.state == STATE_QUEUED
        claimed = queue.claim()
        assert claimed.id == record.id
        assert claimed.state == STATE_RUNNING
        assert claimed.attempts == 1
        queue.finish(claimed.id, {"objective": 1.0})
        done = queue.get(record.id)
        assert done.state == STATE_DONE
        assert done.result == {"objective": 1.0}

    def test_duplicate_submission_dedups(self, queue, pair):
        first, created = queue.submit(spec_for(pair), source="http")
        again, created_again = queue.submit(spec_for(pair), source="watch")
        assert created and not created_again
        assert again.id == first.id
        assert sum(1 for _ in queue.jobs()) == 1

    def test_claim_order_is_fifo_and_empty_is_none(self, queue, pair, tmp_path):
        assert queue.claim() is None
        queue.submit(spec_for(pair), source="http")
        other = write_csv(tmp_path / "c.csv", [["q", "r"]])
        second_spec = validate_spec(
            {"log_first": str(other), "log_second": str(pair[1])}
        )
        queue.submit(second_spec, source="http")
        first = queue.claim()
        second = queue.claim()
        assert first.submitted <= second.submitted
        assert queue.claim() is None

    def test_fail_bury_requeue(self, queue, pair):
        record, _ = queue.submit(spec_for(pair), source="http")
        queue.claim()
        queue.requeue(record.id, "transient")
        assert queue.get(record.id).state == STATE_QUEUED
        queue.claim()
        queue.fail(record.id, "bad input")
        assert queue.get(record.id).state == STATE_FAILED
        queue.bury(record.id, "poison")
        assert queue.get(record.id).state == STATE_DEAD

    def test_recover_requeues_running_jobs(self, tmp_path, pair):
        path = tmp_path / "jobs.db"
        queue = JobQueue(path)
        record, _ = queue.submit(spec_for(pair), source="http")
        queue.claim()
        assert queue.get(record.id).state == STATE_RUNNING
        queue.close()
        # A new life: the interrupted job is re-queued, attempts kept.
        revived = JobQueue(path)
        assert revived.recover() == 1
        job = revived.get(record.id)
        assert job.state == STATE_QUEUED
        assert job.attempts == 1
        revived.close()

    def test_lifecycle_counters(self, tmp_path, pair):
        observer = Observer(metrics=MetricsRegistry())
        queue = JobQueue(tmp_path / "jobs.db", observer=observer)
        queue.submit(spec_for(pair), source="http")
        queue.submit(spec_for(pair), source="http")
        claimed = queue.claim()
        queue.finish(claimed.id, {})
        snapshot = observer.metrics.as_dict()
        assert snapshot["jobs_submitted_total"]["value"] == 1
        assert snapshot["jobs_deduped_total"]["value"] == 1
        assert snapshot["jobs_completed_total"]["value"] == 1
        assert snapshot["queue_depth"]["value"] == 0
        queue.close()

    def test_concurrent_submitters_dedup_to_one_job(self, tmp_path, pair):
        queue = JobQueue(tmp_path / "jobs.db")
        spec = spec_for(pair)
        barrier = threading.Barrier(4)
        results = []

        def submit():
            barrier.wait(timeout=10)
            results.append(queue.submit(spec, source="http"))

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 4
        assert len({record.id for record, _ in results}) == 1
        assert sum(1 for _, created in results if created) == 1
        queue.close()
