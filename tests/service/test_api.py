"""HTTP surface and watch-folder ingestion of the daemon."""

import json
import time

import pytest

from repro.obs import PROMETHEUS_CONTENT_TYPE
from repro.service import MatchingService

from .conftest import http, write_csv


@pytest.fixture()
def service(tmp_path):
    service = MatchingService(
        tmp_path / "store", workers=1, watch_dir=tmp_path / "inbox"
    )
    service.start()
    yield service
    service.stop()


@pytest.fixture()
def base(service):
    return f"http://{service.host}:{service.port}"


def wait_for_state(base, job_id, states=("done", "failed", "dead"), timeout=30):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, document = http("GET", f"{base}/jobs/{job_id}")
        assert status == 200
        if document["state"] in states:
            return document
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached {states}")


class TestRoutes:
    def test_healthz(self, base):
        status, document = http("GET", f"{base}/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["queue_depth"] == 0

    def test_metrics_exposition_contract(self, base):
        import urllib.request

        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = response.read().decode()
        assert text.endswith("\n")

    def test_unknown_route_404(self, base):
        status, document = http("GET", f"{base}/nope")
        assert status == 404
        assert "no such route" in document["error"]

    def test_unknown_job_404(self, base):
        status, _ = http("GET", f"{base}/jobs/deadbeef")
        assert status == 404
        status, _ = http("GET", f"{base}/jobs/deadbeef/result")
        assert status == 404

    def test_result_of_pending_job_is_409(self, base, service, csv_pair):
        # Stall the scheduler by submitting against a paused queue: use
        # a job that cannot be claimed yet — simplest is to ask for the
        # result while the job may still be queued/running; if it is
        # already done the 200 path is equally valid, so force the 409
        # by submitting directly to the queue without waking a worker.
        from repro.service import validate_spec

        spec = validate_spec(
            {"log_first": str(csv_pair[0]), "log_second": str(csv_pair[1]),
             "threshold": 0.99}
        )
        record, _ = service.queue.submit(spec, source="test")
        status, document = http("GET", f"{base}/jobs/{record.id}/result")
        if status == 409:  # not yet picked up / still running
            assert document["state"] in ("queued", "running")
        else:  # a worker raced us and finished it — also correct
            assert status == 200

    def test_malformed_submission_400_and_dead_lettered(self, base, service):
        status, document = http("POST", f"{base}/jobs", {"nonsense": True})
        assert status == 400
        assert "unknown job spec field" in document["error"]
        status, document = http("GET", f"{base}/deadletters")
        assert status == 200
        assert len(document["deadletters"]) == 1
        occurrence = document["deadletters"][0]["occurrences"][0]
        assert "unknown job spec field" in occurrence["problem"]
        assert occurrence["mode"] == "http"

    def test_unparseable_body_400(self, base):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{base}/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=30)
        assert caught.value.code == 400

    def test_jobs_listing(self, base, csv_pair):
        spec = {"log_first": str(csv_pair[0]), "log_second": str(csv_pair[1])}
        status, document = http("POST", f"{base}/jobs", spec)
        assert status == 201
        status, listing = http("GET", f"{base}/jobs")
        assert status == 200
        assert [job["id"] for job in listing["jobs"]] == [document["id"]]


class TestWatchFolder:
    def test_dropped_spec_becomes_a_job(self, service, base, csv_pair, tmp_path):
        inbox = tmp_path / "inbox"
        spec = {"log_first": str(csv_pair[0]), "log_second": str(csv_pair[1])}
        (inbox / "pair.json").write_text(json.dumps(spec))
        deadline = time.time() + 30
        receipt = inbox / "pair.json.accepted"
        while time.time() < deadline and not receipt.exists():
            time.sleep(0.05)
        assert receipt.exists(), "watcher never accepted the drop"
        job_id = json.loads(receipt.read_text())["job"]
        document = wait_for_state(base, job_id)
        assert document["state"] == "done"
        assert document["source"] == "watch"
        assert not (inbox / "pair.json").exists()

    def test_malformed_drop_is_rejected_and_archived(
        self, service, base, tmp_path
    ):
        inbox = tmp_path / "inbox"
        (inbox / "broken.json").write_text("{not json")
        deadline = time.time() + 30
        receipt = inbox / "broken.json.rejected"
        while time.time() < deadline and not receipt.exists():
            time.sleep(0.05)
        assert receipt.exists(), "watcher never rejected the drop"
        status, document = http("GET", f"{base}/deadletters")
        assert status == 200
        assert any(
            occurrence["mode"] == "watch"
            for entry in document["deadletters"]
            for occurrence in entry["occurrences"]
        )
