"""Shared fixtures for the matching-service suite."""

import json
import urllib.error
import urllib.request

import pytest


def write_csv(path, traces):
    """Serialize traces (lists of activities) as a minimal CSV log."""
    lines = ["case_id,activity"]
    for index, trace in enumerate(traces):
        lines.extend(f"{index},{activity}" for activity in trace)
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture()
def csv_pair(tmp_path):
    """A small singleton pair on disk (distinct vocabularies)."""
    first = write_csv(
        tmp_path / "orders.csv",
        [["start", "check", "ship"]] * 2 + [["start", "ship", "check"]],
    )
    second = write_csv(
        tmp_path / "fulfilment.csv",
        [["begin", "verify", "send"]] * 2 + [["begin", "send", "verify"]],
    )
    return first, second


@pytest.fixture()
def wide_csv_pair(tmp_path):
    """The wide composite pair (4 merges over 5 rounds) as CSV files."""
    first = write_csv(
        tmp_path / "wide_a.csv",
        [
            ["A1", "A2", "B1", "B2", "C1", "C2", "D1", "D2"],
            ["B1", "B2", "A1", "A2", "D1", "D2", "C1", "C2"],
            ["C1", "C2", "D1", "D2", "B1", "B2", "A1", "A2"],
            ["D1", "D2", "C1", "C2", "A1", "A2", "B1", "B2"],
        ],
    )
    second = write_csv(
        tmp_path / "wide_b.csv",
        [
            ["A", "B", "C", "D"],
            ["B", "A", "D", "C"],
            ["C", "D", "B", "A"],
            ["D", "C", "A", "B"],
        ],
    )
    return first, second


def http(method, url, body=None):
    """One HTTP round trip; returns (status, decoded JSON or text)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = response.read().decode()
            content_type = response.headers.get("Content-Type", "")
            status = response.status
    except urllib.error.HTTPError as error:
        payload = error.read().decode()
        content_type = error.headers.get("Content-Type", "")
        status = error.code
    if content_type.startswith("application/json"):
        return status, json.loads(payload)
    return status, payload
