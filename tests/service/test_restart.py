"""Kill-and-restart: SIGTERM mid-job, restart, checkpoint resume.

Drives the real daemon as a subprocess (``python -m repro serve``).  The
in-flight composite job is interrupted deterministically by an inline
fault plan (the scripted equivalent of a SIGTERM landing at a round
boundary) so it flushes a checkpoint and parks as ``running``; the
daemon then receives a real SIGTERM.  A second daemon life over the same
store directory must re-queue the job, resume it from the snapshot, and
finish with a result bit-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.core.config import EMSConfig
from repro.matchers import EMSCompositeMatcher
from repro.service import READY_FILE

from .conftest import http


def start_daemon(store_dir):
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store-dir", str(store_dir),
         "--poll-interval", "0.05"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    ready = Path(store_dir) / READY_FILE
    deadline = time.time() + 60
    while time.time() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died on startup: {process.stderr.read().decode()}"
            )
        if ready.exists():
            try:
                document = json.loads(ready.read_text())
            except ValueError:  # torn read, retry
                continue
            if document.get("pid") == process.pid:
                return process, f"http://{document['host']}:{document['port']}"
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon never wrote its ready file")


def stop_daemon(process, sig=signal.SIGTERM, timeout=60):
    process.send_signal(sig)
    try:
        process.wait(timeout=timeout)
    finally:
        if process.poll() is None:
            process.kill()


def test_sigterm_mid_job_resumes_from_checkpoint(tmp_path, wide_csv_pair):
    store_dir = tmp_path / "store"
    spec = {
        "log_first": str(wide_csv_pair[0]),
        "log_second": str(wide_csv_pair[1]),
        "composite": True,
        "delta": 0.001,
        # Interrupt at the round-2 boundary of attempt 1 — exactly what
        # a SIGTERM landing mid-search does, made deterministic.
        "fault_plan": {
            "specs": [{"site": "search.round", "kind": "interrupt", "round": 2}]
        },
    }

    # Life 1: submit, let the fault trip the job mid-run.
    process, base = start_daemon(store_dir)
    try:
        status, submitted = http("POST", f"{base}/jobs", spec)
        assert status == 201
        job_id = submitted["id"]
        # The interrupted job parks as `running` (never done/failed).
        deadline = time.time() + 60
        parked = None
        while time.time() < deadline:
            status, parked = http("GET", f"{base}/jobs/{job_id}")
            assert parked["state"] in ("queued", "running"), (
                f"job ended {parked['state']} in life 1: {parked['error']}"
            )
            if parked["state"] == "running" and parked["attempts"] == 1:
                checkpoints = list((store_dir / "checkpoints").glob("*"))
                if checkpoints:  # the final flush happened
                    break
            time.sleep(0.05)
        assert parked is not None and parked["state"] == "running"
        assert list((store_dir / "checkpoints").iterdir()), (
            "no checkpoint was flushed before the interrupt"
        )
    finally:
        stop_daemon(process)  # the real SIGTERM

    # Between lives the job table still says `running`: the daemon went
    # down with work in flight, which is the whole point.
    # Life 2: recovery re-queues it; the resumed attempt completes.
    process, base = start_daemon(store_dir)
    try:
        deadline = time.time() + 120
        document = None
        while time.time() < deadline:
            status, document = http("GET", f"{base}/jobs/{job_id}")
            assert status == 200
            if document["state"] in ("done", "failed", "dead"):
                break
            time.sleep(0.1)
        assert document is not None and document["state"] == "done", (
            f"job did not resume: {document}"
        )
        assert document["attempts"] == 2  # one per daemon life
        status, result_document = http("GET", f"{base}/jobs/{job_id}/result")
        assert status == 200
        result = result_document["result"]
    finally:
        stop_daemon(process)

    # Bit-identical to an uninterrupted in-process run.
    from repro.cli import load_log

    outcome = EMSCompositeMatcher(EMSConfig(alpha=1.0), delta=0.001).match(
        load_log(str(wide_csv_pair[0])), load_log(str(wide_csv_pair[1]))
    )
    assert result["objective"] == outcome.objective
    expected = sorted(
        [{"left": sorted(c.left), "right": sorted(c.right)}
         for c in outcome.correspondences],
        key=str,
    )
    assert sorted(result["correspondences"], key=str) == expected
    assert result["runtime"]["stage"] == "exact"
