"""End-to-end daemon lifecycle: submit, poll, fetch, dedup, bit-equality.

The acceptance bar of the serving arc: a job submitted over HTTP must
produce the *same bits* as the equivalent direct
:func:`repro.store.pipeline.match_stored` call, and resubmitting the
identical pair must answer with the existing job instead of recomputing.
"""

import time

import pytest

from repro.core.config import EMSConfig
from repro.matchers import EMSMatcher
from repro.service import MatchingService
from repro.store import MatchStore, match_stored

from .conftest import http


@pytest.fixture()
def service(tmp_path):
    service = MatchingService(tmp_path / "store", workers=2)
    service.start()
    yield service
    service.stop()


def poll_until_done(base, job_id, timeout=60):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, document = http("GET", f"{base}/jobs/{job_id}")
        assert status == 200
        if document["state"] == "done":
            return document
        assert document["state"] in ("queued", "running"), (
            f"job ended {document['state']}: {document['error']}"
        )
        time.sleep(0.05)
    raise AssertionError("job never completed")


def test_submit_poll_result_bitwise_equal_and_deduped(
    service, tmp_path, csv_pair
):
    base = f"http://{service.host}:{service.port}"
    spec = {
        "log_first": str(csv_pair[0]),
        "log_second": str(csv_pair[1]),
        "threshold": 0.1,
    }

    status, submitted = http("POST", f"{base}/jobs", spec)
    assert status == 201
    assert submitted["deduped"] is False
    job_id = submitted["id"]

    poll_until_done(base, job_id)
    status, document = http("GET", f"{base}/jobs/{job_id}/result")
    assert status == 200
    result = document["result"]

    # The same pair through the library path, in a separate store so the
    # daemon's persisted matrix cannot mask a divergence.
    store = MatchStore(tmp_path / "direct.db")
    try:
        outcome, _ = match_stored(
            str(csv_pair[0]), str(csv_pair[1]),
            matcher=EMSMatcher(EMSConfig(alpha=1.0), threshold=0.1),
            store=store,
        )
    finally:
        store.close()
    assert result["objective"] == outcome.objective  # bitwise, not approx
    expected = sorted(
        [{"left": sorted(c.left), "right": sorted(c.right)}
         for c in outcome.correspondences],
        key=str,
    )
    assert sorted(result["correspondences"], key=str) == expected

    # Idempotent resubmission: same content, same job, no new work.
    status, again = http("POST", f"{base}/jobs", spec)
    assert status == 200
    assert again["id"] == job_id
    assert again["deduped"] is True
    assert again["state"] == "done"

    # The lifecycle counters tell the same story on /metrics.
    status, text = http("GET", f"{base}/metrics")
    assert status == 200
    lines = text.splitlines()
    assert "jobs_submitted_total 1" in lines
    assert "jobs_completed_total 1" in lines
    assert "jobs_deduped_total 1" in lines


def test_same_bytes_under_a_different_path_dedup(service, tmp_path, csv_pair):
    base = f"http://{service.host}:{service.port}"
    copy = tmp_path / "copy.csv"
    copy.write_bytes(csv_pair[0].read_bytes())
    spec = {"log_first": str(csv_pair[0]), "log_second": str(csv_pair[1])}
    status, first = http("POST", f"{base}/jobs", spec)
    assert status == 201
    status, second = http(
        "POST", f"{base}/jobs",
        {"log_first": str(copy), "log_second": str(csv_pair[1])},
    )
    assert status == 200
    assert second["id"] == first["id"]


def test_input_error_job_fails_terminally(service, tmp_path):
    base = f"http://{service.host}:{service.port}"
    bad = tmp_path / "bad.csv"
    bad.write_text("wrong,header\n1,x\n")
    good = tmp_path / "good.csv"
    good.write_text("case_id,activity\n1,a\n1,b\n")
    status, submitted = http(
        "POST", f"{base}/jobs",
        {"log_first": str(bad), "log_second": str(good)},
    )
    assert status == 201
    deadline = time.time() + 30
    while time.time() < deadline:
        _, document = http("GET", f"{base}/jobs/{submitted['id']}")
        if document["state"] not in ("queued", "running"):
            break
        time.sleep(0.05)
    assert document["state"] == "failed"  # not retried, not dead
    assert document["attempts"] == 1
    assert "LogFormatError" in document["error"]
    # ... and the poisoned spec is inspectable in the dead letters.
    _, letters = http("GET", f"{base}/deadletters")
    assert any(
        occurrence["mode"] == "input-error"
        for entry in letters["deadletters"]
        for occurrence in entry["occurrences"]
    )
