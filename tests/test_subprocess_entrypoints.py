"""Smoke tests that the installed entry points actually launch."""

import subprocess
import sys

import pytest


def run(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *args], capture_output=True, text=True, timeout=120
    )


class TestEntryPoints:
    def test_repro_match_help(self):
        result = run(["-m", "repro", "match", "--help"])
        assert result.returncode == 0
        assert "--composite" in result.stdout

    def test_repro_module_requires_command(self):
        result = run(["-m", "repro"])
        assert result.returncode != 0

    def test_experiments_help(self):
        result = run(["-m", "repro.experiments", "--help"])
        assert result.returncode == 0
        assert "fig3" in result.stdout
        assert "ext-noise" in result.stdout

    def test_experiments_unknown_figure(self):
        result = run(["-m", "repro.experiments", "fig99"])
        assert result.returncode != 0
        assert "unknown figures" in result.stderr

    @pytest.mark.parametrize("figure", ["fig7"])
    def test_experiments_quick_figure_runs(self, figure):
        result = run(["-m", "repro.experiments", figure])
        assert result.returncode == 0
        assert "completed in" in result.stdout

    def test_match_end_to_end(self, tmp_path):
        from repro.logs.xes import write_xes
        from repro.synthesis.examples import figure1_logs

        log_first, log_second, _ = figure1_logs()
        path_first = tmp_path / "first.xes"
        path_second = tmp_path / "second.xes"
        write_xes(log_first, path_first)
        write_xes(log_second, path_second)
        result = run(["-m", "repro", "match", str(path_first), str(path_second)])
        assert result.returncode == 0
        assert "<->" in result.stdout
