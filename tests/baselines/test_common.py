"""Tests for the shared matcher interface plumbing."""

import pytest

from repro.baselines.common import (
    Evaluation,
    EventMatcher,
    identity_members,
    pairs_to_outcome,
)
from repro.logs.log import EventLog


class _StubMatcher(EventMatcher):
    name = "stub"

    def evaluate(self, log_first, log_second, members_first, members_second):
        return Evaluation(
            objective=0.5,
            pairs=(("a", "x"),),
            diagnostics={"k": 1.0},
        )


class TestIdentityMembers:
    def test_every_activity_maps_to_itself(self):
        log = EventLog([["a", "b"]])
        members = identity_members(log)
        assert members == {"a": frozenset({"a"}), "b": frozenset({"b"})}


class TestPairsToOutcome:
    def test_member_expansion(self):
        evaluation = Evaluation(0.7, (("m", "x"),))
        outcome = pairs_to_outcome(
            evaluation, {"m": frozenset({"p", "q"})}, {}
        )
        (correspondence,) = outcome.correspondences
        assert correspondence.left == frozenset({"p", "q"})
        assert correspondence.right == frozenset({"x"})
        assert outcome.objective == 0.7

    def test_unknown_nodes_fall_back_to_singletons(self):
        evaluation = Evaluation(0.1, (("a", "x"),))
        outcome = pairs_to_outcome(evaluation, {}, {})
        (correspondence,) = outcome.correspondences
        assert correspondence.left == frozenset({"a"})


class TestDefaultMatch:
    def test_match_uses_identity_members(self):
        matcher = _StubMatcher()
        outcome = matcher.match(EventLog([["a"]]), EventLog([["x"]]))
        (correspondence,) = outcome.correspondences
        assert correspondence.left == frozenset({"a"})
        assert outcome.diagnostics["k"] == 1.0

    def test_repr(self):
        assert "stub" in repr(_StubMatcher())

    def test_abstract_base_unusable(self):
        with pytest.raises(TypeError):
            EventMatcher()  # type: ignore[abstract]
