"""Tests for the footprint-profile baseline."""

import pytest

from repro.baselines.profiles import ProfileMatcher
from repro.logs.log import EventLog
from repro.matching.evaluation import evaluate
from repro.similarity.labels import ExactSimilarity


class TestProfileMatcher:
    def test_isomorphic_chains(self):
        log_first = EventLog([list("abc")] * 5)
        log_second = EventLog([list("xyz")] * 5)
        outcome = ProfileMatcher().match(log_first, log_second)
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert found == {("a", "x"), ("b", "y"), ("c", "z")}
        assert outcome.objective == pytest.approx(1.0)

    def test_dislocation_immunity(self):
        """Profiles are position-free: an extra prefix event barely moves
        the fingerprints of the shared chain."""
        log_first = EventLog([["pay", "check", "pack", "ship"]] * 10)
        log_second = EventLog([["intake", "pay2", "check2", "pack2", "ship2"]] * 10)
        outcome = ProfileMatcher().match(log_first, log_second)
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert ("check", "check2") in found
        assert ("pack", "pack2") in found

    def test_figure1(self, fig1_logs, fig1_truth):
        outcome = ProfileMatcher().match(*fig1_logs)
        result = evaluate(fig1_truth, outcome.correspondences)
        assert result.f_measure > 0.3  # decent but not EMS-level

    def test_label_blending(self):
        log_first = EventLog([["a", "b"], ["b", "a"]] * 3)
        log_second = EventLog([["a", "b"], ["b", "a"]] * 3)
        structural = ProfileMatcher().match(log_first, log_second)
        labeled = ProfileMatcher(alpha=0.3, label_similarity=ExactSimilarity()).match(
            log_first, log_second
        )
        found = {(min(c.left), min(c.right)) for c in labeled.correspondences}
        # Structure alone cannot tell a from b (symmetric); labels can.
        assert found == {("a", "a"), ("b", "b")}
        assert len(structural.correspondences) == 2

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            ProfileMatcher(alpha=-0.5)

    def test_objective_is_footprint_agreement(self, fig1_logs):
        outcome = ProfileMatcher().match(*fig1_logs)
        assert 0.0 <= outcome.objective <= 1.0
        assert outcome.diagnostics["profile_agreement"] == outcome.objective
