"""Tests for the GED baseline."""

import pytest

from repro.baselines.ged import GEDMatcher
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.similarity.labels import ExactSimilarity


@pytest.fixture()
def chain_graphs():
    return (
        DependencyGraph.from_log(EventLog([list("abc")] * 5)),
        DependencyGraph.from_log(EventLog([list("xyz")] * 5)),
    )


class TestDistance:
    def test_empty_mapping_distance(self, chain_graphs):
        matcher = GEDMatcher()
        distance = matcher.distance(*chain_graphs, mapping={})
        # All nodes and edges skipped, no substitutions.
        assert distance == pytest.approx(
            matcher.weight_skip_nodes + matcher.weight_skip_edges
        )

    def test_perfect_mapping_distance_zero_when_identical(self):
        graph = DependencyGraph.from_log(EventLog([list("abc")] * 5))
        matcher = GEDMatcher()
        mapping = {node: node for node in graph.nodes}
        assert matcher.distance(graph, graph, mapping) == pytest.approx(0.0)

    def test_distance_in_unit_interval(self, chain_graphs):
        matcher = GEDMatcher()
        for mapping in ({}, {"a": "x"}, {"a": "x", "b": "y", "c": "z"}):
            assert 0.0 <= matcher.distance(*chain_graphs, mapping=mapping) <= 1.0

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            GEDMatcher(weight_skip_nodes=0.5, weight_skip_edges=0.5, weight_substitution=0.5)


class TestGreedyMatching:
    def test_identical_chains_fully_mapped(self, chain_graphs):
        log_first = EventLog([list("abc")] * 5)
        log_second = EventLog([list("xyz")] * 5)
        outcome = GEDMatcher().match(log_first, log_second)
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert found == {("a", "x"), ("b", "y"), ("c", "z")}

    def test_objective_is_one_minus_distance(self, fig1_logs):
        outcome = GEDMatcher().match(*fig1_logs)
        assert outcome.objective == pytest.approx(
            1.0 - outcome.diagnostics["distance"]
        )

    def test_label_similarity_guides_mapping(self):
        log_first = EventLog([["pay", "ship"]] * 4)
        log_second = EventLog([["ship", "pay"]] * 4)
        outcome = GEDMatcher(label_similarity=ExactSimilarity()).match(
            log_first, log_second
        )
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert ("pay", "pay") in found
        assert ("ship", "ship") in found

    def test_cutoff_blocks_weak_pairs(self, fig1_logs):
        # An absurd cutoff prevents any mapping at all.
        outcome = GEDMatcher(label_similarity=ExactSimilarity(), cutoff=0.99).match(
            *fig1_logs
        )
        assert outcome.correspondences == ()

    def test_example2_failure_mode(self, fig1_logs, fig1_truth):
        """GED's local evaluation cannot recover the full Figure 1 mapping
        (Example 2 shows it prefers a locally-plausible but wrong map)."""
        from repro.matching.evaluation import evaluate

        outcome = GEDMatcher().match(*fig1_logs)
        result = evaluate(fig1_truth, outcome.correspondences)
        assert result.f_measure < 1.0
