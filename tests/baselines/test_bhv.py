"""Tests for the BHV baseline."""

import pytest

from repro.baselines.bhv import BHVMatcher
from repro.logs.log import EventLog
from repro.similarity.labels import ExactSimilarity


class TestSimilarity:
    def test_sourceless_pairs_score_one(self, fig1_logs):
        """Example 2: A and 1, both without predecessors, score 1 under BHV."""
        matrix = BHVMatcher().similarity(*fig1_logs)
        assert matrix.get("A", "1") == pytest.approx(1.0)

    def test_dislocated_pair_scores_zero(self, fig1_logs):
        """Example 2: BHV cannot match A to its true counterpart 2."""
        matrix = BHVMatcher().similarity(*fig1_logs)
        assert matrix.get("A", "2") == pytest.approx(0.0)
        assert matrix.get("A", "1") > matrix.get("A", "2")

    def test_values_bounded(self, fig1_logs):
        matrix = BHVMatcher().similarity(*fig1_logs)
        values = matrix.values
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_identical_chains_match(self):
        log_first = EventLog([list("abc")] * 5)
        log_second = EventLog([list("xyz")] * 5)
        outcome = BHVMatcher().match(log_first, log_second)
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert found == {("a", "x"), ("b", "y"), ("c", "z")}

    def test_label_similarity_blended(self):
        log_first = EventLog([["a", "b"]] * 3)
        log_second = EventLog([["b", "a"]] * 3)
        matcher = BHVMatcher(alpha=0.3, label_similarity=ExactSimilarity())
        matrix = matcher.similarity(log_first, log_second)
        assert matrix.get("a", "a") > matrix.get("a", "b")


class TestValidation:
    def test_alpha_range(self):
        with pytest.raises(ValueError):
            BHVMatcher(alpha=1.5)

    def test_c_range(self):
        with pytest.raises(ValueError):
            BHVMatcher(c=1.0)


class TestEvaluate:
    def test_objective_is_average(self, fig1_logs):
        matcher = BHVMatcher()
        evaluation = matcher.evaluate(
            fig1_logs[0], fig1_logs[1], {}, {}
        )
        matrix = matcher.similarity(*fig1_logs)
        assert evaluation.objective == pytest.approx(matrix.average())

    def test_threshold_drops_pairs(self, fig1_logs):
        strict = BHVMatcher(threshold=0.99)
        evaluation = strict.evaluate(fig1_logs[0], fig1_logs[1], {}, {})
        loose = BHVMatcher(threshold=0.0)
        assert len(evaluation.pairs) <= len(
            loose.evaluate(fig1_logs[0], fig1_logs[1], {}, {}).pairs
        )
