"""Tests for the generic greedy composite wrapper."""

import pytest

from repro.baselines.bhv import BHVMatcher
from repro.baselines.common import Evaluation, EventMatcher
from repro.baselines.composite_wrapper import GreedyCompositeWrapper
from repro.baselines.ged import GEDMatcher
from repro.matching.evaluation import evaluate


class _CountingMatcher(EventMatcher):
    """Prefers fewer nodes: merging always improves its objective."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def evaluate(self, log_first, log_second, members_first, members_second):
        self.calls += 1
        activities = sorted(log_first.activities())
        return Evaluation(
            objective=1.0 / (len(activities) + len(log_second.activities())),
            pairs=(),
        )


class TestWrapper:
    def test_delta_validated(self):
        with pytest.raises(ValueError):
            GreedyCompositeWrapper(BHVMatcher(), delta=-1)

    def test_name_inherited(self):
        assert GreedyCompositeWrapper(GEDMatcher()).name == "GED"

    def test_merges_when_objective_improves(self, fig1_logs):
        base = _CountingMatcher()
        wrapper = GreedyCompositeWrapper(
            base, delta=0.0, min_confidence=0.9, max_run_length=2, max_rounds=3
        )
        outcome = wrapper.match(*fig1_logs)
        assert outcome.diagnostics["composite_evaluations"] > 1

    def test_high_delta_keeps_singletons(self, fig1_logs):
        wrapper = GreedyCompositeWrapper(
            BHVMatcher(), delta=0.9, min_confidence=0.9, max_run_length=2
        )
        outcome = wrapper.match(*fig1_logs)
        assert all(not c.is_composite() for c in outcome.correspondences)

    def test_ged_finds_cd_composite(self, fig1_logs, fig1_truth):
        wrapper = GreedyCompositeWrapper(
            GEDMatcher(), delta=0.005, min_confidence=0.9, max_run_length=2
        )
        outcome = wrapper.match(*fig1_logs)
        result = evaluate(fig1_truth, outcome.correspondences)
        # The merged graphs become near-isomorphic; GED recovers everything.
        assert result.f_measure == pytest.approx(1.0)

    def test_rounds_bounded(self, fig1_logs):
        base = _CountingMatcher()
        wrapper = GreedyCompositeWrapper(
            base, delta=0.0, min_confidence=0.5, max_run_length=2, max_rounds=1
        )
        wrapper.match(*fig1_logs)
        # one initial + at most one round of candidate evaluations
        assert base.calls <= 30
