"""Tests for the OPQ baseline."""

import numpy as np
import pytest

from repro.baselines.opq import OPQMatcher, mapping_score, weight_matrix
from repro.exceptions import SearchBudgetExceeded
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog


class TestWeightMatrix:
    def test_diagonal_and_edges(self, fig1_graphs):
        graph = fig1_graphs[0]
        matrix = weight_matrix(graph)
        index = {node: i for i, node in enumerate(graph.nodes)}
        assert matrix[index["A"], index["A"]] == pytest.approx(0.4)
        assert matrix[index["C"], index["D"]] == pytest.approx(1.0)
        assert matrix[index["A"], index["F"]] == 0.0

    def test_artificial_event_absent(self, fig1_graphs):
        matrix = weight_matrix(fig1_graphs[0])
        assert matrix.shape == (6, 6)


class TestMappingScore:
    def test_identical_matrices_identity_mapping(self):
        w = np.array([[1.0, 0.5], [0.0, 0.8]])
        score = mapping_score(w, w, np.array([0, 1]))
        assert score == pytest.approx(3.0)  # three nonzero cells, agreement 1 each

    def test_disagreement_scores_lower(self):
        w1 = np.array([[1.0]])
        w2 = np.array([[0.5]])
        assert mapping_score(w1, w2, np.array([0])) == pytest.approx(1 - 0.5 / 1.5)

    def test_all_zero(self):
        w = np.zeros((2, 2))
        assert mapping_score(w, w, np.array([0, 1])) == 0.0


class TestSearch:
    def test_exhaustive_finds_identity_on_identical_graphs(self):
        graph = DependencyGraph.from_log(EventLog([list("abcd")] * 5))
        mapping, _ = OPQMatcher().best_mapping(graph, graph)
        assert mapping == {node: node for node in graph.nodes}

    def test_hill_climb_beyond_exhaustive_limit(self):
        log = EventLog([list("abcdefghij")] * 5 + [list("abcdefghji")] * 5)
        graph = DependencyGraph.from_log(log)
        matcher = OPQMatcher(exhaustive_limit=4)
        mapping, score = matcher.best_mapping(graph, graph)
        assert len(mapping) == 10
        assert score > 0

    def test_budget_cap_raises(self):
        names = [f"a{i}" for i in range(31)]
        log = EventLog([names] * 3)
        graph = DependencyGraph.from_log(log)
        with pytest.raises(SearchBudgetExceeded):
            OPQMatcher(max_events=30).best_mapping(graph, graph)

    def test_rectangular_mapping_injective(self, fig1_logs):
        log_small = EventLog([list("abc")] * 5)
        outcome = OPQMatcher().match(log_small, fig1_logs[1])
        lefts = [min(c.left) for c in outcome.correspondences]
        rights = [min(c.right) for c in outcome.correspondences]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)
        assert len(outcome.correspondences) == 3  # the smaller side

    def test_validation(self):
        with pytest.raises(ValueError):
            OPQMatcher(exhaustive_limit=0)
        with pytest.raises(ValueError):
            OPQMatcher(exhaustive_limit=10, max_events=5)

    def test_example2_cannot_recover_full_mapping(self, fig1_logs, fig1_truth):
        """OPQ's normal-score optimum misaligns part of the dislocated
        Figure 1 mapping (Example 2: it prefers a wrong map over truth)."""
        from repro.matching.evaluation import evaluate

        outcome = OPQMatcher().match(*fig1_logs)
        result = evaluate(fig1_truth, outcome.correspondences)
        assert result.f_measure < 1.0

    def test_deterministic(self, fig1_logs):
        first = OPQMatcher().match(*fig1_logs)
        second = OPQMatcher().match(*fig1_logs)
        assert first.correspondences == second.correspondences
