"""Tests for the Similarity Flooding baseline."""

import numpy as np
import pytest

from repro.baselines.flooding import FloodingMatcher
from repro.logs.log import EventLog
from repro.matching.evaluation import evaluate
from repro.similarity.labels import ExactSimilarity


class TestFlooding:
    def test_isomorphic_chains_match(self):
        log_first = EventLog([list("abcd")] * 5)
        log_second = EventLog([list("wxyz")] * 5)
        outcome = FloodingMatcher().match(log_first, log_second)
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert found == {("a", "w"), ("b", "x"), ("c", "y"), ("d", "z")}

    def test_sigma_bounded(self, fig1_logs):
        rows, cols, sigma = FloodingMatcher().similarity(*fig1_logs)
        assert sigma.shape == (len(rows), len(cols))
        assert np.isfinite(sigma).all()
        assert sigma.max() <= 1.0 + 1e-9
        assert sigma.min() >= 0.0

    def test_labels_seed_the_flood(self):
        # Symmetric structure: only labels can break the tie.
        log_first = EventLog([["a", "b"], ["b", "a"]] * 3)
        log_second = EventLog([["a", "b"], ["b", "a"]] * 3)
        outcome = FloodingMatcher(label_similarity=ExactSimilarity()).match(
            log_first, log_second
        )
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert found == {("a", "a"), ("b", "b")}

    def test_figure1_partial_recovery(self, fig1_logs, fig1_truth):
        outcome = FloodingMatcher().match(*fig1_logs)
        result = evaluate(fig1_truth, outcome.correspondences)
        # A local matcher: decent but not EMS-level on dislocated data.
        assert 0.0 < result.f_measure < 1.0

    def test_deterministic(self, fig1_logs):
        first = FloodingMatcher().match(*fig1_logs)
        second = FloodingMatcher().match(*fig1_logs)
        assert first.correspondences == second.correspondences

    def test_converges_quickly_on_small_graphs(self, fig1_logs):
        matcher = FloodingMatcher(max_iterations=500)
        outcome = matcher.match(*fig1_logs)
        assert outcome.correspondences  # converged and produced a mapping
