"""Tests for the command line interface."""

import json

import pytest

from repro.cli import load_log, main
from repro.logs.csvio import write_csv
from repro.logs.xes import write_xes
from repro.synthesis.examples import figure1_logs


@pytest.fixture()
def log_paths(tmp_path):
    log_first, log_second, _ = figure1_logs()
    path_first = tmp_path / "first.xes"
    path_second = tmp_path / "second.xes"
    write_xes(log_first, path_first)
    write_xes(log_second, path_second)
    return str(path_first), str(path_second)


class TestLoadLog:
    def test_auto_detect_xes(self, log_paths):
        log = load_log(log_paths[0])
        assert log.activities() == frozenset("ABCDEF")

    def test_auto_detect_csv(self, tmp_path):
        log_first, _, _ = figure1_logs()
        path = tmp_path / "log.csv"
        write_csv(log_first, path)
        assert load_log(str(path)).activities() == frozenset("ABCDEF")

    def test_unknown_extension_rejected(self, tmp_path):
        from repro.exceptions import LogFormatError

        path = tmp_path / "log.bin"
        path.write_bytes(b"")
        with pytest.raises(LogFormatError):
            load_log(str(path))


class TestMatchCommand:
    def test_plain_output(self, log_paths, capsys):
        exit_code = main(["match", *log_paths])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "EMS" in output
        assert "<->" in output

    def test_json_output(self, log_paths, capsys):
        exit_code = main(["match", *log_paths, "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matcher"] == "EMS"
        assert payload["correspondences"]
        pairs = {
            (entry["left"][0], entry["right"][0])
            for entry in payload["correspondences"]
            if len(entry["left"]) == 1
        }
        assert ("A", "2") in pairs  # dislocated match found from the CLI too

    def test_composite_flag(self, log_paths, capsys):
        exit_code = main(
            ["match", *log_paths, "--composite", "--delta", "0.005", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        lefts = [tuple(sorted(e["left"])) for e in payload["correspondences"]]
        assert ("C", "D") in lefts

    def test_composite_workers_flag(self, log_paths, capsys):
        exit_code = main(
            ["match", *log_paths, "--composite", "--delta", "0.005",
             "--workers", "2", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        lefts = [tuple(sorted(e["left"])) for e in payload["correspondences"]]
        assert ("C", "D") in lefts

    def test_negative_workers_rejected(self, log_paths, capsys):
        assert main(["match", *log_paths, "--workers", "-2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_estimate_flag(self, log_paths, capsys):
        assert main(["match", *log_paths, "--estimate", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matcher"] == "EMS+es"

    def test_threshold_flag(self, log_paths, capsys):
        assert main(["match", *log_paths, "--threshold", "0.99"]) == 0
        assert "no correspondences" in capsys.readouterr().out

    def test_kernel_flag_matches_default(self, log_paths, capsys):
        payloads = []
        for kernel in ("vectorized", "sparse", "reference"):
            assert main(["match", *log_paths, "--kernel", kernel, "--json"]) == 0
            payloads.append(json.loads(capsys.readouterr().out))
        default, sparse, reference = payloads
        assert sparse["correspondences"] == default["correspondences"]
        assert reference["correspondences"] == default["correspondences"]
        assert sparse["objective"] == pytest.approx(default["objective"], abs=1e-12)

    def test_kernel_flag_rejects_unknown(self, log_paths, capsys):
        with pytest.raises(SystemExit):
            main(["match", *log_paths, "--kernel", "gpu"])
        assert "--kernel" in capsys.readouterr().err

    def test_dtype_flag(self, log_paths, capsys):
        assert main(["match", *log_paths, "--json"]) == 0
        wide = json.loads(capsys.readouterr().out)
        assert main(["match", *log_paths, "--dtype", "float32", "--json"]) == 0
        narrow = json.loads(capsys.readouterr().out)
        assert narrow["correspondences"] == wide["correspondences"]
        assert narrow["objective"] == pytest.approx(wide["objective"], abs=1e-5)

    def test_dtype_flag_rejects_unknown(self, log_paths, capsys):
        with pytest.raises(SystemExit):
            main(["match", *log_paths, "--dtype", "float16"])
        assert "--dtype" in capsys.readouterr().err

    def test_explicit_format_flag(self, tmp_path, capsys):
        from repro.logs.csvio import write_csv
        from repro.synthesis.examples import figure1_logs

        log_first, log_second, _ = figure1_logs()
        # Extensions lie about the content; --format must override.
        path_first = tmp_path / "first.dat"
        path_second = tmp_path / "second.dat"
        with open(path_first, "w", newline="", encoding="utf-8") as handle:
            write_csv(log_first, handle)
        with open(path_second, "w", newline="", encoding="utf-8") as handle:
            write_csv(log_second, handle)
        exit_code = main(
            ["match", str(path_first), str(path_second), "--format", "csv"]
        )
        assert exit_code == 0
        assert "<->" in capsys.readouterr().out

    def test_labels_flag_sets_blended_alpha(self, log_paths, capsys):
        exit_code = main(["match", *log_paths, "--labels", "--json"])
        assert exit_code == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["correspondences"]

    def test_alpha_flag_overrides(self, log_paths, capsys):
        exit_code = main(["match", *log_paths, "--labels", "--alpha", "0.9", "--json"])
        assert exit_code == 0

    def test_report_flag_writes_markdown(self, log_paths, tmp_path, capsys):
        report_path = tmp_path / "report.md"
        assert main(["match", *log_paths, "--report", str(report_path)]) == 0
        content = report_path.read_text(encoding="utf-8")
        assert content.startswith("# Event matching report")
        assert "## Correspondences" in content
