"""Tests for the command line interface."""

import json

import pytest

from repro.cli import load_log, main
from repro.logs.csvio import write_csv
from repro.logs.xes import write_xes
from repro.synthesis.examples import figure1_logs


@pytest.fixture()
def log_paths(tmp_path):
    log_first, log_second, _ = figure1_logs()
    path_first = tmp_path / "first.xes"
    path_second = tmp_path / "second.xes"
    write_xes(log_first, path_first)
    write_xes(log_second, path_second)
    return str(path_first), str(path_second)


class TestLoadLog:
    def test_auto_detect_xes(self, log_paths):
        log = load_log(log_paths[0])
        assert log.activities() == frozenset("ABCDEF")

    def test_auto_detect_csv(self, tmp_path):
        log_first, _, _ = figure1_logs()
        path = tmp_path / "log.csv"
        write_csv(log_first, path)
        assert load_log(str(path)).activities() == frozenset("ABCDEF")

    def test_unknown_extension_rejected(self, tmp_path):
        from repro.exceptions import LogFormatError

        path = tmp_path / "log.bin"
        path.write_bytes(b"")
        with pytest.raises(LogFormatError):
            load_log(str(path))


class TestMatchCommand:
    def test_plain_output(self, log_paths, capsys):
        exit_code = main(["match", *log_paths])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "EMS" in output
        assert "<->" in output

    def test_json_output(self, log_paths, capsys):
        exit_code = main(["match", *log_paths, "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matcher"] == "EMS"
        assert payload["correspondences"]
        pairs = {
            (entry["left"][0], entry["right"][0])
            for entry in payload["correspondences"]
            if len(entry["left"]) == 1
        }
        assert ("A", "2") in pairs  # dislocated match found from the CLI too

    def test_composite_flag(self, log_paths, capsys):
        exit_code = main(
            ["match", *log_paths, "--composite", "--delta", "0.005", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        lefts = [tuple(sorted(e["left"])) for e in payload["correspondences"]]
        assert ("C", "D") in lefts

    def test_composite_workers_flag(self, log_paths, capsys):
        exit_code = main(
            ["match", *log_paths, "--composite", "--delta", "0.005",
             "--workers", "2", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        lefts = [tuple(sorted(e["left"])) for e in payload["correspondences"]]
        assert ("C", "D") in lefts

    def test_negative_workers_rejected(self, log_paths, capsys):
        assert main(["match", *log_paths, "--workers", "-2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_estimate_flag(self, log_paths, capsys):
        assert main(["match", *log_paths, "--estimate", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matcher"] == "EMS+es"

    def test_threshold_flag(self, log_paths, capsys):
        assert main(["match", *log_paths, "--threshold", "0.99"]) == 0
        assert "no correspondences" in capsys.readouterr().out

    def test_kernel_flag_matches_default(self, log_paths, capsys):
        payloads = []
        for kernel in ("vectorized", "sparse", "reference"):
            assert main(["match", *log_paths, "--kernel", kernel, "--json"]) == 0
            payloads.append(json.loads(capsys.readouterr().out))
        default, sparse, reference = payloads
        assert sparse["correspondences"] == default["correspondences"]
        assert reference["correspondences"] == default["correspondences"]
        assert sparse["objective"] == pytest.approx(default["objective"], abs=1e-12)

    def test_kernel_flag_rejects_unknown(self, log_paths, capsys):
        with pytest.raises(SystemExit):
            main(["match", *log_paths, "--kernel", "gpu"])
        assert "--kernel" in capsys.readouterr().err

    def test_dtype_flag(self, log_paths, capsys):
        assert main(["match", *log_paths, "--json"]) == 0
        wide = json.loads(capsys.readouterr().out)
        assert main(["match", *log_paths, "--dtype", "float32", "--json"]) == 0
        narrow = json.loads(capsys.readouterr().out)
        assert narrow["correspondences"] == wide["correspondences"]
        assert narrow["objective"] == pytest.approx(wide["objective"], abs=1e-5)

    def test_dtype_flag_rejects_unknown(self, log_paths, capsys):
        with pytest.raises(SystemExit):
            main(["match", *log_paths, "--dtype", "float16"])
        assert "--dtype" in capsys.readouterr().err

    def test_explicit_format_flag(self, tmp_path, capsys):
        from repro.logs.csvio import write_csv
        from repro.synthesis.examples import figure1_logs

        log_first, log_second, _ = figure1_logs()
        # Extensions lie about the content; --format must override.
        path_first = tmp_path / "first.dat"
        path_second = tmp_path / "second.dat"
        with open(path_first, "w", newline="", encoding="utf-8") as handle:
            write_csv(log_first, handle)
        with open(path_second, "w", newline="", encoding="utf-8") as handle:
            write_csv(log_second, handle)
        exit_code = main(
            ["match", str(path_first), str(path_second), "--format", "csv"]
        )
        assert exit_code == 0
        assert "<->" in capsys.readouterr().out

    def test_labels_flag_sets_blended_alpha(self, log_paths, capsys):
        exit_code = main(["match", *log_paths, "--labels", "--json"])
        assert exit_code == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["correspondences"]

    def test_alpha_flag_overrides(self, log_paths, capsys):
        exit_code = main(["match", *log_paths, "--labels", "--alpha", "0.9", "--json"])
        assert exit_code == 0

    def test_report_flag_writes_markdown(self, log_paths, tmp_path, capsys):
        report_path = tmp_path / "report.md"
        assert main(["match", *log_paths, "--report", str(report_path)]) == 0
        content = report_path.read_text(encoding="utf-8")
        assert content.startswith("# Event matching report")
        assert "## Correspondences" in content


class TestScaledMatch:
    """``--shard-traces`` / ``--parallel-ingest`` / ``--store`` route the
    match through the out-of-core pipeline — same answer, graph-only."""

    def baseline(self, log_paths, capsys):
        assert main(["match", *log_paths, "--json"]) == 0
        return json.loads(capsys.readouterr().out)

    def normalize(self, payload):
        return (
            payload["objective"],
            sorted(
                (tuple(e["left"]), tuple(e["right"]))
                for e in payload["correspondences"]
            ),
        )

    def test_sharded_match_matches_in_memory(self, log_paths, capsys):
        reference = self.baseline(log_paths, capsys)
        assert main(["match", *log_paths, "--shard-traces", "2", "--json"]) == 0
        scaled = json.loads(capsys.readouterr().out)
        assert self.normalize(scaled) == self.normalize(reference)

    def test_parallel_ingest_matches_in_memory(self, log_paths, capsys):
        reference = self.baseline(log_paths, capsys)
        assert main(
            ["match", *log_paths, "--parallel-ingest", "2", "--json"]
        ) == 0
        scaled = json.loads(capsys.readouterr().out)
        assert self.normalize(scaled) == self.normalize(reference)

    def test_store_warm_run_matches_cold(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(["match", *log_paths, "--store", str(store), "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert store.exists()
        assert main(["match", *log_paths, "--store", str(store), "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert self.normalize(warm) == self.normalize(cold)

    def test_composite_incompatible_with_scale_flags(self, log_paths, capsys):
        code = main(["match", *log_paths, "--composite", "--shard-traces", "2"])
        assert code == 2
        assert "composite" in capsys.readouterr().err

    def test_report_incompatible_with_scale_flags(self, log_paths, tmp_path, capsys):
        code = main(
            ["match", *log_paths, "--shard-traces", "2",
             "--report", str(tmp_path / "r.md")]
        )
        assert code == 2

    def test_invalid_shard_traces_rejected(self, log_paths, capsys):
        assert main(["match", *log_paths, "--shard-traces", "0"]) == 2

    def test_scaled_metrics_exported(self, log_paths, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        store = tmp_path / "store.db"
        assert main(
            ["match", *log_paths, "--shard-traces", "2",
             "--store", str(store), "--metrics-out", str(metrics)]
        ) == 0
        text = metrics.read_text()
        assert "ingest_shards_total" in text
        assert "store_misses_total" in text


class TestStatsCommand:
    def test_text_output(self, log_paths, capsys):
        assert main(["stats", log_paths[0]]) == 0
        out = capsys.readouterr().out
        assert "6 activities" in out
        assert "[streamed]" in out

    def test_json_output(self, log_paths, capsys):
        assert main(["stats", log_paths[0], "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "streamed"
        assert payload["activities"] == 6
        assert set(payload["activity_frequencies"]) == set("ABCDEF")
        assert payload["ingestion"]["clean"] is True

    def test_sharded_stats_match_streamed(self, log_paths, capsys):
        assert main(["stats", log_paths[0], "--json"]) == 0
        streamed = json.loads(capsys.readouterr().out)
        assert main(
            ["stats", log_paths[0], "--shard-traces", "2", "--json"]
        ) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["mode"] == "sharded"
        assert sharded["shards"] > 1
        assert sharded["activity_frequencies"] == streamed["activity_frequencies"]
        assert sharded["pair_frequencies"] == streamed["pair_frequencies"]

    def test_store_round_trip(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(["stats", log_paths[0], "--store", str(store), "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["mode"] == "streamed"
        assert main(["stats", log_paths[0], "--store", str(store), "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["mode"] == "store"
        assert warm["activity_frequencies"] == cold["activity_frequencies"]

    def test_top_limits_text_listing(self, log_paths, capsys):
        assert main(["stats", log_paths[0], "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "... and 4 more" in out

    def test_negative_top_rejected(self, log_paths, capsys):
        assert main(["stats", log_paths[0], "--top", "-1"]) == 2

    def test_missing_file_is_input_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.xes")]) == 2


class TestMatchStoreCLI:
    """The warm ``match --store`` path and its JSON provenance."""

    def csv_paths(self, tmp_path):
        log_first, log_second, _ = figure1_logs()
        path_first = tmp_path / "first.csv"
        path_second = tmp_path / "second.csv"
        write_csv(log_first, path_first)
        write_csv(log_second, path_second)
        return str(path_first), str(path_second)

    def test_match_mode_provenance(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(["match", *log_paths, "--store", str(store), "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["scale"]["match_mode"] == "computed"
        assert main(["match", *log_paths, "--store", str(store), "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["scale"]["match_mode"] == "store"
        assert warm["scale"]["matrix_key"] == cold["scale"]["matrix_key"]
        assert warm["objective"] == cold["objective"]

    def test_store_hit_noted_in_text_output(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(["match", *log_paths, "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["match", *log_paths, "--store", str(store)]) == 0
        assert "[match store: store]" in capsys.readouterr().out

    def test_partial_hit_after_append(self, tmp_path, capsys):
        paths = self.csv_paths(tmp_path)
        store = tmp_path / "store.db"
        assert main(["match", *paths, "--store", str(store), "--json"]) == 0
        capsys.readouterr()
        with open(paths[0], "a") as handle:
            handle.write("case-new-1,A,99.0\ncase-new-1,B,100.0\n")
        assert main(["match", *paths, "--store", str(store), "--json"]) == 0
        grown = json.loads(capsys.readouterr().out)
        assert grown["scale"]["match_mode"] == "store-partial"
        assert grown["scale"]["ingest_modes"][0] == "store-append"
        # Bit-identical to matching the grown pair without any store.
        assert main(["match", *paths, "--json"]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert grown["objective"] == reference["objective"]
        assert grown["correspondences"] == reference["correspondences"]

    def test_match_store_metrics_exported(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        metrics = tmp_path / "metrics.prom"
        assert main(["match", *log_paths, "--store", str(store)]) == 0
        assert main(
            ["match", *log_paths, "--store", str(store),
             "--metrics-out", str(metrics)]
        ) == 0
        assert "match_store_hits_total 1" in metrics.read_text()


class TestStatsFromStore:
    def test_round_trip_matches_ingested(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(["stats", log_paths[0], "--store", str(store), "--json"]) == 0
        ingested = json.loads(capsys.readouterr().out)
        assert main(
            ["stats", log_paths[0], "--store", str(store),
             "--from-store", "--json"]
        ) == 0
        served = json.loads(capsys.readouterr().out)
        assert served["mode"] == "store-sql"
        assert served["trace_count"] == ingested["trace_count"]
        assert served["activity_frequencies"] == ingested["activity_frequencies"]
        assert served["pair_frequencies"] == ingested["pair_frequencies"]

    def test_answers_without_the_file(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(["stats", log_paths[0], "--store", str(store)]) == 0
        capsys.readouterr()
        import os

        os.unlink(log_paths[0])  # the file is gone; the store still answers
        assert main(
            ["stats", log_paths[0], "--store", str(store), "--from-store"]
        ) == 0
        assert "[store-sql]" in capsys.readouterr().out

    def test_requires_store_flag(self, log_paths, capsys):
        assert main(["stats", log_paths[0], "--from-store"]) == 2
        assert "--from-store requires --store" in capsys.readouterr().err

    def test_unknown_path_is_an_input_error(self, log_paths, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(["stats", log_paths[0], "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(
            ["stats", log_paths[1], "--store", str(store), "--from-store"]
        ) == 2
        assert "no stored trace rows" in capsys.readouterr().err
