"""The documented public API surface must stay importable and coherent."""

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        log_a = repro.EventLog(
            [["cash", "check", "ship"]] * 4 + [["card", "check", "ship"]] * 6,
            name="a",
        )
        log_b = repro.EventLog(
            [["accept", "cash2", "check2", "ship2"]] * 4
            + [["accept", "card2", "check2", "ship2"]] * 6,
            name="b",
        )
        outcome = repro.EMSMatcher().match(log_a, log_b)
        assert outcome.correspondences
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert ("cash", "cash2") in found  # dislocated start handled
        assert ("card", "card2") in found

    def test_engine_surface(self):
        log = repro.EventLog([["a", "b"]] * 4)
        graph = repro.DependencyGraph.from_log(log)
        result = repro.EMSEngine(repro.EMSConfig()).similarity(graph, graph)
        assert result.matrix.get("a", "a") > result.matrix.get("a", "b")
