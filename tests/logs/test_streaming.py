"""Tests for the streaming statistics accumulator."""

import pytest

from repro.exceptions import EventLogError
from repro.graph.dependency import DependencyGraph
from repro.logs.log import RESERVED_ACTIVITY, EventLog
from repro.logs.stats import compute_statistics
from repro.logs.streaming import OnlineStatistics


class TestAccumulation:
    def test_matches_batch_computation(self, fig1_logs):
        log = fig1_logs[0]
        online = OnlineStatistics()
        online.add_log(log)
        snapshot = online.snapshot()
        batch = compute_statistics(log)
        assert snapshot.trace_count == batch.trace_count
        assert snapshot.activity_frequencies == batch.activity_frequencies
        assert snapshot.pair_frequencies == batch.pair_frequencies

    def test_incremental_equals_batch_at_every_prefix(self, fig1_logs):
        log = fig1_logs[0]
        online = OnlineStatistics()
        seen = []
        for trace in log:
            online.add_trace(trace)
            seen.append(trace)
            batch = compute_statistics(EventLog(seen))
            assert online.snapshot() == batch

    def test_accepts_bare_sequences(self):
        online = OnlineStatistics()
        online.add_trace(["a", "b"])
        assert online.trace_count == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(EventLogError):
            OnlineStatistics().add_trace([])

    def test_reserved_name_rejected(self):
        with pytest.raises(EventLogError):
            OnlineStatistics().add_trace([RESERVED_ACTIVITY])

    def test_snapshot_requires_data(self):
        with pytest.raises(EventLogError):
            OnlineStatistics().snapshot()


class TestMerge:
    def test_merge_equals_union(self, fig1_logs):
        log = fig1_logs[0]
        traces = list(log)
        first = OnlineStatistics()
        second = OnlineStatistics()
        for trace in traces[:4]:
            first.add_trace(trace)
        for trace in traces[4:]:
            second.add_trace(trace)
        merged = first.merge(second)
        assert merged.snapshot() == compute_statistics(log)

    def test_merge_leaves_inputs_untouched(self):
        first = OnlineStatistics()
        first.add_trace(["a"])
        second = OnlineStatistics()
        second.add_trace(["b"])
        first.merge(second)
        assert first.trace_count == 1
        assert second.trace_count == 1


class TestGraphRefresh:
    def test_snapshot_builds_identical_graph(self, fig1_logs):
        log = fig1_logs[0]
        online = OnlineStatistics()
        online.add_log(log)
        from_stream = DependencyGraph.from_statistics(online.snapshot())
        from_batch = DependencyGraph.from_log(log)
        assert from_stream.nodes == from_batch.nodes
        assert from_stream.real_edges == from_batch.real_edges
