"""Tests for the streaming statistics accumulator."""

import pytest

from repro.exceptions import EventLogError
from repro.graph.dependency import DependencyGraph
from repro.logs.log import RESERVED_ACTIVITY, EventLog
from repro.logs.stats import compute_statistics
from repro.logs.streaming import OnlineStatistics


class TestAccumulation:
    def test_matches_batch_computation(self, fig1_logs):
        log = fig1_logs[0]
        online = OnlineStatistics()
        online.add_log(log)
        snapshot = online.snapshot()
        batch = compute_statistics(log)
        assert snapshot.trace_count == batch.trace_count
        assert snapshot.activity_frequencies == batch.activity_frequencies
        assert snapshot.pair_frequencies == batch.pair_frequencies

    def test_incremental_equals_batch_at_every_prefix(self, fig1_logs):
        log = fig1_logs[0]
        online = OnlineStatistics()
        seen = []
        for trace in log:
            online.add_trace(trace)
            seen.append(trace)
            batch = compute_statistics(EventLog(seen))
            assert online.snapshot() == batch

    def test_accepts_bare_sequences(self):
        online = OnlineStatistics()
        online.add_trace(["a", "b"])
        assert online.trace_count == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(EventLogError):
            OnlineStatistics().add_trace([])

    def test_reserved_name_rejected(self):
        with pytest.raises(EventLogError):
            OnlineStatistics().add_trace([RESERVED_ACTIVITY])

    def test_snapshot_requires_data(self):
        with pytest.raises(EventLogError):
            OnlineStatistics().snapshot()


class TestMerge:
    def test_merge_equals_union(self, fig1_logs):
        log = fig1_logs[0]
        traces = list(log)
        first = OnlineStatistics()
        second = OnlineStatistics()
        for trace in traces[:4]:
            first.add_trace(trace)
        for trace in traces[4:]:
            second.add_trace(trace)
        merged = first.merge(second)
        assert merged.snapshot() == compute_statistics(log)

    def test_merge_leaves_inputs_untouched(self):
        first = OnlineStatistics()
        first.add_trace(["a"])
        second = OnlineStatistics()
        second.add_trace(["b"])
        first.merge(second)
        assert first.trace_count == 1
        assert second.trace_count == 1

    def test_merge_into_equals_pure_merge(self, fig1_logs):
        log = fig1_logs[0]
        traces = list(log)
        shards = [traces[:2], traces[2:5], traces[5:]]
        pure = OnlineStatistics()
        folded = OnlineStatistics()
        for shard in shards:
            accumulator = OnlineStatistics()
            for trace in shard:
                accumulator.add_trace(trace)
            pure = pure.merge(accumulator)
            accumulator.merge_into(folded)
        assert folded.snapshot() == pure.snapshot()
        assert folded.snapshot() == compute_statistics(log)

    def test_merge_into_leaves_source_untouched(self):
        source = OnlineStatistics()
        source.add_trace(["a", "b"])
        target = OnlineStatistics()
        target.add_trace(["b", "c"])
        source.merge_into(target)
        assert source.trace_count == 1
        assert dict(source.activity_counts) == {"a": 1, "b": 1}
        assert target.trace_count == 2


class TestSequencesAndSeeding:
    def test_add_sequence_matches_add_trace(self, fig1_logs):
        log = fig1_logs[0]
        by_trace = OnlineStatistics()
        by_sequence = OnlineStatistics()
        for trace in log:
            by_trace.add_trace(trace)
            by_sequence.add_sequence(trace.activities)
        assert by_sequence.snapshot() == by_trace.snapshot()

    def test_add_sequence_counts_repeats_once_per_trace(self):
        online = OnlineStatistics()
        online.add_sequence(["a", "a", "b", "a"])
        assert dict(online.activity_counts) == {"a": 1, "b": 1}
        assert dict(online.pair_counts) == {("a", "a"): 1, ("a", "b"): 1, ("b", "a"): 1}

    def test_add_sequence_validates(self):
        with pytest.raises(EventLogError):
            OnlineStatistics().add_sequence([])
        with pytest.raises(EventLogError):
            OnlineStatistics().add_sequence([RESERVED_ACTIVITY])

    def test_seed_counts_round_trips(self, fig1_logs):
        log = fig1_logs[0]
        original = OnlineStatistics()
        original.add_log(log)
        restored = OnlineStatistics()
        restored.seed_counts(
            original.trace_count,
            dict(original.activity_counts),
            dict(original.pair_counts),
        )
        assert restored.snapshot() == original.snapshot()

    def test_seed_counts_requires_empty_accumulator(self):
        online = OnlineStatistics()
        online.add_trace(["a"])
        with pytest.raises(EventLogError):
            online.seed_counts(1, {"a": 1}, {})


class TestGraphRefresh:
    def test_snapshot_builds_identical_graph(self, fig1_logs):
        log = fig1_logs[0]
        online = OnlineStatistics()
        online.add_log(log)
        from_stream = DependencyGraph.from_statistics(online.snapshot())
        from_batch = DependencyGraph.from_log(log)
        assert from_stream.nodes == from_batch.nodes
        assert from_stream.real_edges == from_batch.real_edges
