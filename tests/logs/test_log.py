"""Unit tests for EventLog."""

import pytest

from repro.exceptions import EventLogError
from repro.logs.events import Trace
from repro.logs.log import RESERVED_ACTIVITY, EventLog


class TestConstruction:
    def test_accepts_nested_sequences(self):
        log = EventLog([["a", "b"], ["b"]])
        assert len(log) == 2

    def test_rejects_empty_trace(self):
        with pytest.raises(EventLogError):
            EventLog([[]])

    def test_rejects_reserved_activity(self):
        with pytest.raises(EventLogError):
            EventLog([[RESERVED_ACTIVITY]])

    def test_append_type_checked(self):
        log = EventLog()
        with pytest.raises(TypeError):
            log.append(["a"])  # type: ignore[arg-type]

    def test_multiset_semantics(self):
        log = EventLog([["a"], ["a"]])
        assert len(log) == 2
        assert log.variant_counts()[("a",)] == 2


class TestEquality:
    def test_order_insensitive(self):
        assert EventLog([["a"], ["b"]]) == EventLog([["b"], ["a"]])

    def test_multiplicity_sensitive(self):
        assert EventLog([["a"], ["a"]]) != EventLog([["a"]])


class TestDerivedViews:
    def test_activities(self):
        log = EventLog([["a", "b"], ["b", "c"]])
        assert log.activities() == frozenset({"a", "b", "c"})

    def test_activity_trace_counts_count_traces_not_occurrences(self):
        log = EventLog([["a", "a", "b"], ["b"]])
        counts = log.activity_trace_counts()
        assert counts["a"] == 1
        assert counts["b"] == 2

    def test_pair_trace_counts_once_per_trace(self):
        log = EventLog([["a", "b", "a", "b"], ["a", "b"]])
        assert log.pair_trace_counts()[("a", "b")] == 2


class TestTransformations:
    def test_relabel(self):
        log = EventLog([["a", "b"]]).relabel({"a": "x"})
        assert log.activities() == frozenset({"x", "b"})

    def test_merge_composite(self):
        log = EventLog([["a", "b", "c"]]).merge_composite(("a", "b"), "ab")
        assert log.traces[0].activities == ("ab", "c")

    def test_map_traces_drops_empty(self):
        log = EventLog([["a", "b"], ["a"]])
        result = log.map_traces(lambda trace: trace.drop_prefix(1))
        assert len(result) == 1

    def test_filter_traces(self):
        log = EventLog([["a"], ["b"]])
        kept = log.filter_traces(lambda trace: trace.activities == ("a",))
        assert len(kept) == 1

    def test_transformations_do_not_mutate_original(self):
        log = EventLog([["a", "b"]], name="orig")
        log.relabel({"a": "x"})
        assert log.activities() == frozenset({"a", "b"})
