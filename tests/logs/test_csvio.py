"""CSV serialization tests."""

import io

import pytest

from repro.exceptions import LogFormatError
from repro.logs.csvio import read_csv, traces_from_rows, write_csv
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog


def roundtrip(log: EventLog) -> EventLog:
    buffer = io.StringIO()
    write_csv(log, buffer)
    buffer.seek(0)
    return read_csv(buffer, name=log.name)


class TestRoundTrip:
    def test_basic(self):
        log = EventLog([["a", "b"], ["c"]], name="demo")
        assert roundtrip(log) == log

    def test_case_grouping_from_interleaved_rows(self):
        rows = io.StringIO(
            "case_id,activity,timestamp\n"
            "c1,a,\n"
            "c2,x,\n"
            "c1,b,\n"
            "c2,y,\n"
        )
        log = read_csv(rows)
        variants = {trace.case_id: trace.activities for trace in log}
        assert variants == {"c1": ("a", "b"), "c2": ("x", "y")}

    def test_timestamp_ordering_within_case(self):
        rows = io.StringIO(
            "case_id,activity,timestamp\n"
            "c1,second,20.0\n"
            "c1,first,10.0\n"
        )
        log = read_csv(rows)
        assert log.traces[0].activities == ("first", "second")

    def test_timestamps_roundtrip_exactly(self):
        log = EventLog([[Event("a", timestamp=123.456789)]])
        restored = roundtrip(log)
        assert restored.traces[0][0].timestamp == 123.456789

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "log.csv"
        log = EventLog(name="f")
        log.append(Trace(["a", "b"], case_id="k-1"))
        write_csv(log, path)
        assert read_csv(path) == log


class TestErrors:
    def test_empty_document(self):
        with pytest.raises(LogFormatError):
            read_csv(io.StringIO(""))

    def test_missing_columns(self):
        with pytest.raises(LogFormatError):
            read_csv(io.StringIO("foo,bar\n1,2\n"))

    def test_bad_timestamp(self):
        with pytest.raises(LogFormatError):
            read_csv(io.StringIO("case_id,activity,timestamp\nc1,a,xyz\n"))

    def test_short_row(self):
        with pytest.raises(LogFormatError):
            read_csv(io.StringIO("case_id,activity,timestamp\nc1\n"))


class TestTracesFromRows:
    def test_preserves_order(self):
        log = traces_from_rows([("c1", "a"), ("c2", "x"), ("c1", "b")])
        variants = {trace.case_id: trace.activities for trace in log}
        assert variants == {"c1": ("a", "b"), "c2": ("x",)}
