"""Tests for the log comparison (drift) report."""

import pytest

from repro.logs.compare import compare_logs
from repro.logs.log import EventLog


@pytest.fixture()
def pair():
    first = EventLog([["a", "b", "c"]] * 6 + [["a", "c"]] * 4, name="before")
    second = EventLog([["a", "b", "c"]] * 2 + [["a", "c"]] * 8, name="after")
    return first, second


class TestVocabulary:
    def test_identical_logs(self):
        log = EventLog([["a", "b"]] * 3, name="same")
        comparison = compare_logs(log, log)
        assert comparison.vocabulary_overlap == 1.0
        assert comparison.only_first == ()
        assert comparison.only_second == ()
        assert comparison.max_drift == 0.0
        assert comparison.relation_changes == ()

    def test_exclusive_activities_reported(self):
        first = EventLog([["a", "b"]] * 3, name="f")
        second = EventLog([["a", "z"]] * 3, name="s")
        comparison = compare_logs(first, second)
        assert comparison.only_first == ("b",)
        assert comparison.only_second == ("z",)
        assert comparison.vocabulary_overlap == pytest.approx(1 / 3)


class TestDrift:
    def test_frequency_drift_measured(self, pair):
        comparison = compare_logs(*pair)
        drift = {d.activity: d.delta for d in comparison.drifts}
        assert drift["b"] == pytest.approx(0.2 - 0.6)
        assert drift["a"] == pytest.approx(0.0)
        assert comparison.max_drift == pytest.approx(0.4)

    def test_relation_changes_detected(self):
        first = EventLog([["a", "b"]] * 4, name="f")       # a -> b
        second = EventLog([["a", "b"], ["b", "a"]] * 2, name="s")  # a || b
        comparison = compare_logs(first, second)
        assert len(comparison.relation_changes) == 1
        change = comparison.relation_changes[0]
        assert change.pair == ("a", "b")
        assert change.relation_first == "->"
        assert change.relation_second == "||"


class TestMapping:
    def test_mapping_translates_before_diffing(self):
        first = EventLog([["x1", "x2"]] * 3, name="f")
        second = EventLog([["y1", "y2"]] * 3, name="s")
        comparison = compare_logs(first, second, mapping={"x1": "y1", "x2": "y2"})
        assert comparison.shared == ("y1", "y2")
        assert comparison.only_first == ()


class TestRender:
    def test_render_mentions_everything(self, pair):
        rendered = compare_logs(*pair).render()
        assert "vocabulary overlap" in rendered
        assert "frequency drift" in rendered
        assert "b: 0.60 -> 0.20" in rendered
