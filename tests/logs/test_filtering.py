"""Tests for log filtering utilities."""

import pytest

from repro.logs.filtering import (
    drop_trace_prefixes,
    drop_trace_suffixes,
    keep_frequent_variants,
    remove_activities,
    sample_traces,
    truncate_traces,
)
from repro.logs.log import EventLog


@pytest.fixture()
def log() -> EventLog:
    return EventLog([["a", "b", "c"], ["a", "b"], ["a"]])


class TestPrefixSuffix:
    def test_drop_prefixes(self, log):
        result = drop_trace_prefixes(log, 1)
        assert [t.activities for t in result] == [("b", "c"), ("b",)]

    def test_drop_suffixes(self, log):
        result = drop_trace_suffixes(log, 1)
        assert [t.activities for t in result] == [("a", "b"), ("a",)]

    def test_drop_zero_is_identity(self, log):
        assert drop_trace_prefixes(log, 0) == log


class TestActivityRemoval:
    def test_remove_activities(self, log):
        result = remove_activities(log, {"b"})
        assert result.activities() == frozenset({"a", "c"})
        assert len(result) == 3

    def test_remove_all_activities_of_trace_drops_it(self):
        log = EventLog([["x"], ["x", "y"]])
        result = remove_activities(log, {"x"})
        assert len(result) == 1


class TestVariantsAndSampling:
    def test_keep_frequent_variants(self):
        log = EventLog([["a"]] * 3 + [["b"]])
        result = keep_frequent_variants(log, 2)
        assert len(result) == 3

    def test_keep_frequent_variants_validates(self):
        with pytest.raises(ValueError):
            keep_frequent_variants(EventLog([["a"]]), 0)

    def test_truncate(self, log):
        result = truncate_traces(log, 2)
        assert max(len(trace) for trace in result) == 2

    def test_truncate_validates(self, log):
        with pytest.raises(ValueError):
            truncate_traces(log, 0)

    def test_sample_with_repeats(self, log):
        result = sample_traces(log, [0, 0, 2])
        assert [t.activities for t in result] == [("a", "b", "c"), ("a", "b", "c"), ("a",)]
