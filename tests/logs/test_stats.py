"""Unit tests for log statistics — the Definition 1 inputs."""

import pytest

from repro.exceptions import EventLogError
from repro.logs.log import EventLog
from repro.logs.stats import (
    activity_occurrence_counts,
    compute_statistics,
    directly_follows_counts,
    end_activity_counts,
    start_activity_counts,
    summarize,
)


@pytest.fixture()
def small_log() -> EventLog:
    # 4 x ACDEF, 6 x BCDFE — the Figure 1 L1 mix.
    return EventLog([list("ACDEF")] * 4 + [list("BCDFE")] * 6)


class TestComputeStatistics:
    def test_rejects_empty_log(self):
        with pytest.raises(EventLogError):
            compute_statistics(EventLog())

    def test_node_frequencies_match_figure2(self, small_log):
        stats = compute_statistics(small_log)
        assert stats.activity_frequencies["A"] == pytest.approx(0.4)
        assert stats.activity_frequencies["B"] == pytest.approx(0.6)
        assert stats.activity_frequencies["C"] == pytest.approx(1.0)

    def test_pair_frequencies_match_figure2(self, small_log):
        stats = compute_statistics(small_log)
        assert stats.pair_frequencies[("A", "C")] == pytest.approx(0.4)
        assert stats.pair_frequencies[("B", "C")] == pytest.approx(0.6)
        assert stats.pair_frequencies[("C", "D")] == pytest.approx(1.0)

    def test_pair_counted_once_per_trace(self):
        stats = compute_statistics(EventLog([["a", "b", "a", "b"]]))
        assert stats.pair_frequencies[("a", "b")] == pytest.approx(1.0)

    def test_frequencies_in_unit_interval(self, small_log):
        stats = compute_statistics(small_log)
        for value in stats.activity_frequencies.values():
            assert 0.0 < value <= 1.0
        for value in stats.pair_frequencies.values():
            assert 0.0 < value <= 1.0


class TestSummaries:
    def test_summarize(self, small_log):
        summary = summarize(small_log)
        assert summary.trace_count == 10
        assert summary.event_count == 50
        assert summary.activity_count == 6
        assert summary.variant_count == 2
        assert summary.mean_trace_length == pytest.approx(5.0)

    def test_summarize_empty_rejected(self):
        with pytest.raises(EventLogError):
            summarize(EventLog())

    def test_start_and_end_counts(self, small_log):
        assert start_activity_counts(small_log)["A"] == 4
        assert start_activity_counts(small_log)["B"] == 6
        assert end_activity_counts(small_log)["F"] == 4
        assert end_activity_counts(small_log)["E"] == 6

    def test_directly_follows_counts_every_occurrence(self):
        counts = directly_follows_counts(EventLog([["a", "b", "a", "b"]]))
        assert counts[("a", "b")] == 2

    def test_occurrence_counts(self):
        counts = activity_occurrence_counts(EventLog([["a", "a", "b"]]))
        assert counts["a"] == 2
        assert counts["b"] == 1
