"""Tests for behavioral footprints."""

import pytest

from repro.logs.footprint import (
    Relation,
    compute_footprint,
    footprint_agreement,
)
from repro.logs.log import EventLog


@pytest.fixture()
def footprint():
    # a then (b || c) then d; e never occurs adjacent to a.
    log = EventLog([["a", "b", "c", "d"], ["a", "c", "b", "d"], ["e"]])
    return compute_footprint(log)


class TestRelations:
    def test_causal(self, footprint):
        assert footprint.relation("a", "b") == Relation.CAUSAL
        assert footprint.relation("b", "a") == Relation.REVERSE

    def test_parallel(self, footprint):
        assert footprint.relation("b", "c") == Relation.PARALLEL
        assert footprint.relation("c", "b") == Relation.PARALLEL

    def test_exclusive(self, footprint):
        assert footprint.relation("a", "e") == Relation.EXCLUSIVE
        assert footprint.relation("a", "d") == Relation.EXCLUSIVE  # never adjacent

    def test_unknown_activity(self, footprint):
        with pytest.raises(KeyError):
            footprint.relation("a", "zzz")

    def test_self_relation_exclusive_without_loop(self, footprint):
        assert footprint.relation("a", "a") == Relation.EXCLUSIVE

    def test_self_loop_parallel(self):
        footprint = compute_footprint(EventLog([["a", "a"]]))
        assert footprint.relation("a", "a") == Relation.PARALLEL


class TestProfiles:
    def test_profile_sums_to_one(self, footprint):
        for activity in footprint.activities:
            assert sum(footprint.profile(activity)) == pytest.approx(1.0)

    def test_isolated_activity_profile(self, footprint):
        causal, reverse, parallel, exclusive = footprint.profile("e")
        assert exclusive == 1.0
        assert causal == reverse == parallel == 0.0

    def test_single_activity_log(self):
        footprint = compute_footprint(EventLog([["only"]]))
        assert footprint.profile("only") == (0.0, 0.0, 0.0, 1.0)


class TestAgreement:
    def test_isomorphic_mapping_scores_one(self):
        first = compute_footprint(EventLog([["a", "b", "c"]] * 3))
        second = compute_footprint(EventLog([["x", "y", "z"]] * 3))
        mapping = {"a": "x", "b": "y", "c": "z"}
        assert footprint_agreement(first, second, mapping) == 1.0

    def test_crossed_mapping_scores_below_one(self):
        first = compute_footprint(EventLog([["a", "b", "c"]] * 3))
        second = compute_footprint(EventLog([["x", "y", "z"]] * 3))
        mapping = {"a": "z", "b": "y", "c": "x"}
        assert footprint_agreement(first, second, mapping) < 1.0

    def test_tiny_mappings(self):
        first = compute_footprint(EventLog([["a"]]))
        second = compute_footprint(EventLog([["x"]]))
        assert footprint_agreement(first, second, {"a": "x"}) == 1.0
        assert footprint_agreement(first, second, {}) == 0.0


class TestRender:
    def test_render_contains_all_activities(self, footprint):
        rendered = footprint.render()
        for activity in footprint.activities:
            assert activity in rendered
        assert Relation.PARALLEL.value in rendered
