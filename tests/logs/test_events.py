"""Unit tests for Event and Trace."""

import pytest

from repro.logs.events import Event, Trace


class TestEvent:
    def test_activity_required(self):
        with pytest.raises(ValueError):
            Event("")

    def test_activity_must_be_string(self):
        with pytest.raises(TypeError):
            Event(42)  # type: ignore[arg-type]

    def test_with_activity_preserves_payload(self):
        event = Event("a", timestamp=5.0, attributes={"resource": "bob"})
        renamed = event.with_activity("b")
        assert renamed.activity == "b"
        assert renamed.timestamp == 5.0
        assert renamed.attributes == {"resource": "bob"}

    def test_frozen(self):
        event = Event("a")
        with pytest.raises(AttributeError):
            event.activity = "b"  # type: ignore[misc]


class TestTrace:
    def test_accepts_strings_and_events(self):
        trace = Trace(["a", Event("b")])
        assert trace.activities == ("a", "b")

    def test_equality_ignores_timestamps(self):
        assert Trace([Event("a", 1.0)]) == Trace([Event("a", 99.0)])
        assert hash(Trace([Event("a", 1.0)])) == hash(Trace([Event("a", 99.0)]))

    def test_equality_respects_order(self):
        assert Trace(["a", "b"]) != Trace(["b", "a"])

    def test_pairs(self):
        assert list(Trace(["a", "b", "c", "b"]).pairs()) == [
            ("a", "b"), ("b", "c"), ("c", "b"),
        ]

    def test_pairs_of_singleton_empty(self):
        assert list(Trace(["a"]).pairs()) == []

    def test_distinct_activities(self):
        assert Trace(["a", "b", "a"]).distinct_activities() == frozenset({"a", "b"})

    def test_drop_prefix(self):
        assert Trace(["a", "b", "c"]).drop_prefix(2).activities == ("c",)

    def test_drop_prefix_beyond_length_empties(self):
        assert len(Trace(["a"]).drop_prefix(5)) == 0

    def test_drop_prefix_negative_rejected(self):
        with pytest.raises(ValueError):
            Trace(["a"]).drop_prefix(-1)

    def test_drop_suffix(self):
        assert Trace(["a", "b", "c"]).drop_suffix(1).activities == ("a", "b")

    def test_drop_suffix_zero_is_identity(self):
        trace = Trace(["a", "b"], case_id="c1")
        result = trace.drop_suffix(0)
        assert result == trace
        assert result.case_id == "c1"

    def test_relabel_partial(self):
        trace = Trace(["a", "b"]).relabel({"a": "x"})
        assert trace.activities == ("x", "b")

    def test_replace_run_collapses_consecutive(self):
        trace = Trace(["a", "b", "c", "b", "c", "d"])
        merged = trace.replace_run(("b", "c"), "bc")
        assert merged.activities == ("a", "bc", "bc", "d")

    def test_replace_run_ignores_noncontiguous(self):
        trace = Trace(["b", "a", "c"])
        assert trace.replace_run(("b", "c"), "bc").activities == ("b", "a", "c")

    def test_replace_run_keeps_anchor_timestamp(self):
        trace = Trace([Event("b", 1.0), Event("c", 2.0)])
        merged = trace.replace_run(("b", "c"), "bc")
        assert merged.events[0].timestamp == 1.0

    def test_replace_run_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace(["a"]).replace_run((), "x")

    def test_indexing_and_iteration(self):
        trace = Trace(["a", "b"])
        assert trace[0].activity == "a"
        assert [event.activity for event in trace] == ["a", "b"]
