"""XES serialization round-trip tests."""

import io

import pytest

from repro.exceptions import LogFormatError
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog
from repro.logs.xes import iter_xes_traces, read_xes, write_xes
from repro.runtime.report import IngestionReport


def roundtrip(log: EventLog) -> EventLog:
    buffer = io.BytesIO()
    write_xes(log, buffer)
    buffer.seek(0)
    return read_xes(buffer)


class TestRoundTrip:
    def test_traces_and_activities_preserved(self):
        log = EventLog([["a", "b"], ["b", "c", "b"]], name="demo")
        restored = roundtrip(log)
        assert restored == log
        assert restored.name == "demo"

    def test_case_ids_preserved(self):
        log = EventLog(name="demo")
        log.append(Trace(["a"], case_id="case-42"))
        restored = roundtrip(log)
        assert restored.traces[0].case_id == "case-42"

    def test_timestamps_preserved_to_millisecond(self):
        log = EventLog([[Event("a", timestamp=1_403_395_200.125)]])
        restored = roundtrip(log)
        assert restored.traces[0][0].timestamp == pytest.approx(
            1_403_395_200.125, abs=1e-3
        )

    def test_attributes_preserved(self):
        log = EventLog([[Event("a", attributes={"resource": "alice"})]])
        restored = roundtrip(log)
        assert restored.traces[0][0].attributes["resource"] == "alice"

    def test_unicode_activities(self):
        log = EventLog([["?????", "Prüfung", "支付"]])
        assert roundtrip(log).activities() == frozenset({"?????", "Prüfung", "支付"})

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "log.xes"
        log = EventLog([["a", "b"]], name="file-demo")
        write_xes(log, path)
        assert read_xes(path) == log


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(b"<log><trace>"))

    def test_wrong_root(self):
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(b"<notalog/>"))

    def test_event_without_name(self):
        document = (
            b'<log><trace><event><string key="other" value="x"/></event></trace></log>'
        )
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(document))

    def test_bad_timestamp(self):
        document = (
            b'<log><trace><event>'
            b'<string key="concept:name" value="a"/>'
            b'<date key="time:timestamp" value="not-a-date"/>'
            b"</event></trace></log>"
        )
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(document))


def trace_xml(case_id: str, activities: tuple[str, ...]) -> bytes:
    events = b"".join(
        b'<event><string key="concept:name" value="%s"/></event>'
        % activity.encode()
        for activity in activities
    )
    return (
        b'<trace><string key="concept:name" value="%s"/>%s</trace>'
        % (case_id.encode(), events)
    )


class TestStreamingIterator:
    """The iterparse-based reader streams: O(trace) memory, lazy yields."""

    def test_traces_yielded_before_document_ends(self):
        document = (
            b"<log>"
            + trace_xml("c0", ("a", "b"))
            + trace_xml("c1", ("b", "c"))
            + b"</log>"
        )
        iterator = iter_xes_traces(io.BytesIO(document))
        first = next(iterator)
        assert first.case_id == "c0"
        assert first.activities == ("a", "b")
        assert [t.case_id for t in iterator] == ["c1"]

    def test_name_sink_receives_log_name(self):
        document = (
            b'<log><string key="concept:name" value="tickets"/>'
            + trace_xml("c0", ("a",))
            + b"</log>"
        )
        names = []
        traces = list(iter_xes_traces(io.BytesIO(document), name_sink=names.append))
        assert names == ["tickets"]
        assert len(traces) == 1

    def test_parse_memory_stays_bounded(self):
        """Regression for the whole-tree ``ET.parse`` reader: peak parse
        memory must track the largest trace, not the document."""
        import tracemalloc

        def document(traces: int) -> bytes:
            body = b"".join(
                trace_xml(f"c{i}", ("alpha", "beta", "gamma", "delta"))
                for i in range(traces)
            )
            return b"<log>" + body + b"</log>"

        def peak(data: bytes) -> int:
            buffer = io.BytesIO(data)
            tracemalloc.start()
            log = read_xes(buffer)
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert len(log) > 0
            return peak_bytes

        small = peak(document(50))
        large = peak(document(2000))
        # 40x more traces; a whole-tree parse would scale peak memory
        # ~40x.  The EventLog itself grows linearly, so just require the
        # per-trace parse overhead to have vanished from the profile.
        assert large < small * 40


class TestRepairStreamingRegression:
    """Pin ``on_error="repair"`` semantics across the streaming rewrite:
    truncation salvage, in-place event repair, and exact accounting."""

    TRUNCATED = (
        b'<log><string key="concept:name" value="ops"/>'
        b'<trace><string key="concept:name" value="done-1"/>'
        b'<event><string key="concept:name" value="start"/></event>'
        b'<event><string key="concept:name" value="finish"/>'
        b'<date key="time:timestamp" value="not-a-date"/></event>'
        b"</trace>"
        b'<trace><string key="concept:name" value="cut-off"/>'
        b'<event><string key="concept:name" value="start"/></event>'
        # export breaks mid-trace: no </trace>, no </log>
    )

    def test_repair_salvages_and_repairs_in_one_pass(self):
        report = IngestionReport(mode="repair")
        log = read_xes(io.BytesIO(self.TRUNCATED), on_error="repair", report=report)
        # The closed trace survives; the trace cut mid-export does not.
        assert [t.case_id for t in log] == ["done-1"]
        assert log.name == "ops"
        # The bad timestamp was repaired (kept, timestamp dropped)...
        assert log.traces[0].activities == ("start", "finish")
        assert log.traces[0][1].timestamp is None
        # ...and every ledger entry is pinned.
        assert report.truncation is not None
        assert report.rows_repaired == 1
        assert report.rows_dropped == 0
        assert report.events_loaded == 2
        assert report.rows_seen == report.events_loaded + report.rows_dropped
        assert not report.clean

    def test_raise_mode_aborts_at_first_defect(self):
        # Streaming parses traces as they close, so the event-level fault
        # in the first trace aborts before the truncation is even seen.
        with pytest.raises(LogFormatError, match="invalid timestamp"):
            read_xes(io.BytesIO(self.TRUNCATED), on_error="raise")

    def test_raise_mode_reports_truncation_as_malformed(self):
        # Without event-level faults, the truncation itself is the abort.
        clean_cut = (
            b"<log>"
            + trace_xml("done-1", ("start", "finish"))
            + b'<trace><event><string key="concept:name" value="start"/></event>'
        )
        with pytest.raises(LogFormatError, match="malformed"):
            read_xes(io.BytesIO(clean_cut), on_error="raise")
