"""XES serialization round-trip tests."""

import io

import pytest

from repro.exceptions import LogFormatError
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog
from repro.logs.xes import read_xes, write_xes


def roundtrip(log: EventLog) -> EventLog:
    buffer = io.BytesIO()
    write_xes(log, buffer)
    buffer.seek(0)
    return read_xes(buffer)


class TestRoundTrip:
    def test_traces_and_activities_preserved(self):
        log = EventLog([["a", "b"], ["b", "c", "b"]], name="demo")
        restored = roundtrip(log)
        assert restored == log
        assert restored.name == "demo"

    def test_case_ids_preserved(self):
        log = EventLog(name="demo")
        log.append(Trace(["a"], case_id="case-42"))
        restored = roundtrip(log)
        assert restored.traces[0].case_id == "case-42"

    def test_timestamps_preserved_to_millisecond(self):
        log = EventLog([[Event("a", timestamp=1_403_395_200.125)]])
        restored = roundtrip(log)
        assert restored.traces[0][0].timestamp == pytest.approx(
            1_403_395_200.125, abs=1e-3
        )

    def test_attributes_preserved(self):
        log = EventLog([[Event("a", attributes={"resource": "alice"})]])
        restored = roundtrip(log)
        assert restored.traces[0][0].attributes["resource"] == "alice"

    def test_unicode_activities(self):
        log = EventLog([["?????", "Prüfung", "支付"]])
        assert roundtrip(log).activities() == frozenset({"?????", "Prüfung", "支付"})

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "log.xes"
        log = EventLog([["a", "b"]], name="file-demo")
        write_xes(log, path)
        assert read_xes(path) == log


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(b"<log><trace>"))

    def test_wrong_root(self):
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(b"<notalog/>"))

    def test_event_without_name(self):
        document = (
            b'<log><trace><event><string key="other" value="x"/></event></trace></log>'
        )
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(document))

    def test_bad_timestamp(self):
        document = (
            b'<log><trace><event>'
            b'<string key="concept:name" value="a"/>'
            b'<date key="time:timestamp" value="not-a-date"/>'
            b"</event></trace></log>"
        )
        with pytest.raises(LogFormatError):
            read_xes(io.BytesIO(document))
