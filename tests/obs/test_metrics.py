"""Unit tests of the metrics registry and its Prometheus exposition."""

import math

import pytest

from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("pair_updates_total")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1.0)

    def test_rejects_invalid_name(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("not a name")


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("round")
        gauge.set(3)
        gauge.inc(-1.0)
        assert gauge.value == 2.0


class TestHistogram:
    def test_cumulative_buckets_end_at_inf(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0))
        assert histogram.buckets[-1] == math.inf
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)
        assert histogram.bucket_counts == [1, 2, 3]  # cumulative
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(100.55)

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("lat", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_returns_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_mismatch_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("a")

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.as_dict()
        assert snapshot["c"] == {"kind": "counter", "value": 2.0}
        assert snapshot["h"]["count"] == 1
        assert snapshot["h"]["buckets"] == {"1": 1, "+Inf": 1}

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("ems_fixpoint_total", help="completed solves").inc()
        registry.gauge("composite_round").set(2)
        registry.histogram("stage_seconds", buckets=(0.5,)).observe(0.1)
        text = registry.to_prometheus_text()
        lines = text.splitlines()
        assert "# HELP ems_fixpoint_total completed solves" in lines
        assert "# TYPE ems_fixpoint_total counter" in lines
        assert "ems_fixpoint_total 1" in lines
        assert "composite_round 2" in lines
        assert 'stage_seconds_bucket{le="0.5"} 1' in lines
        assert 'stage_seconds_bucket{le="+Inf"} 1' in lines
        assert "stage_seconds_sum 0.1" in lines
        assert "stage_seconds_count 1" in lines
        assert text.endswith("\n")

    def test_empty_registry_is_still_newline_terminated(self):
        # The exposition format requires the final line to end in a line
        # feed; strict scrapers reject a torn last line, so even the
        # empty exposition carries the terminator.
        assert MetricsRegistry().to_prometheus_text() == "\n"

    def test_exposition_always_ends_in_newline(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed_total").inc()
        assert registry.to_prometheus_text().endswith("\n")

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", help="line one\nline \\two").inc()
        text = registry.to_prometheus_text()
        assert "# HELP c line one\\nline \\\\two" in text.splitlines()

    def test_content_type_names_the_text_format_version(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
