"""Unit tests of run manifests: stage partition, environment, round-trip."""

import json

from repro.obs import (
    FakeClock,
    MetricsRegistry,
    Observer,
    RunManifest,
    Tracer,
    environment_metadata,
    stage_timings,
)
from repro.obs.manifest import MANIFEST_VERSION, stage_name


class TestStageName:
    def test_indexed_spans_normalize(self):
        assert stage_name("ems.iteration[3]") == "ems.iteration"
        assert stage_name("composite.round[0]") == "composite.round"
        assert stage_name("graph.build") == "graph.build"


class TestStageTimings:
    def test_exclusive_times_partition_the_roots(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("match"):
            with tracer.span("ems.fixpoint"):
                with tracer.span("ems.iteration[0]"):
                    pass
                with tracer.span("ems.iteration[1]"):
                    pass
        stages = stage_timings(tracer.roots)
        total = sum(root.duration for root in tracer.roots)
        assert sum(entry["seconds"] for entry in stages.values()) == total
        assert stages["ems.iteration"]["spans"] == 2
        assert set(stages) == {"match", "ems.fixpoint", "ems.iteration"}


class TestEnvironmentMetadata:
    def test_reports_interpreter_and_libraries(self):
        environment = environment_metadata()
        assert set(environment) == {
            "python", "implementation", "platform", "machine",
            "cpu_count", "numpy",
        }
        assert environment["implementation"] == "CPython"
        assert environment["numpy"] is not None  # numpy is installed here


class TestRunManifest:
    def _observer(self) -> Observer:
        observer = Observer(
            tracer=Tracer(clock=FakeClock(step=0.5)), metrics=MetricsRegistry()
        )
        with observer.span("match"):
            with observer.span("graph.build"):
                pass
        observer.count("ems_fixpoint_total")
        return observer

    def test_from_observer_collects_everything(self):
        manifest = RunManifest.from_observer(
            self._observer(), config={"alpha": 0.5}, stats={"objective": 1.25}
        )
        assert manifest.config == {"alpha": 0.5}
        assert manifest.total_seconds == 1.5  # 3 clock ticks of 0.5s
        assert sum(
            entry["seconds"] for entry in manifest.stages.values()
        ) == manifest.total_seconds
        assert manifest.metrics["ems_fixpoint_total"]["value"] == 1.0
        assert manifest.stats == {"objective": 1.25}

    def test_write_is_valid_versioned_json(self, tmp_path):
        manifest = RunManifest.from_observer(self._observer())
        path = tmp_path / "manifest.json"
        manifest.write(path)
        payload = json.loads(path.read_text())
        assert payload["manifest_version"] == MANIFEST_VERSION
        assert payload["environment"]["python"]
        assert payload["stages"]["match"]["spans"] == 1

    def test_observer_without_sinks_yields_empty_manifest(self):
        manifest = RunManifest.from_observer(Observer())
        assert manifest.stages == {} and manifest.metrics == {}
        assert manifest.total_seconds == 0.0
