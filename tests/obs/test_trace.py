"""Unit tests of the tracing spans: balance, nesting, fragments, export."""

import pytest

from repro.obs import FakeClock, Span, TraceError, Tracer
from repro.obs.trace import _json_safe


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer(clock=FakeClock(start=100.0, step=1.0))


class TestSpan:
    def test_duration_and_open_span(self):
        span = Span(name="x", start=2.0, end=5.0)
        assert span.duration == 3.0
        assert Span(name="open", start=2.0).duration == 0.0

    def test_self_time_excludes_children(self):
        child = Span(name="c", start=1.0, end=3.0)
        parent = Span(name="p", start=0.0, end=4.0, children=[child])
        assert parent.self_time == 2.0

    def test_self_time_floored_at_zero(self):
        child = Span(name="c", start=0.0, end=9.0)
        parent = Span(name="p", start=0.0, end=4.0, children=[child])
        assert parent.self_time == 0.0

    def test_shift_translates_subtree(self):
        child = Span(name="c", start=1.0, end=2.0)
        parent = Span(name="p", start=0.0, end=3.0, children=[child])
        parent.shift(10.0)
        assert (parent.start, parent.end) == (10.0, 13.0)
        assert (child.start, child.end) == (11.0, 12.0)

    def test_roundtrip_through_dicts(self):
        child = Span(name="c", start=1.0, end=2.0, attributes={"k": 1})
        parent = Span(name="p", start=0.0, end=3.0, children=[child], tid=7)
        clone = Span.from_dict(parent.to_dict())
        assert clone.name == "p" and clone.tid == 7
        assert clone.children[0].attributes == {"k": 1}


class TestTracer:
    def test_nested_spans_record_clock_readings(self, tracer):
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        assert tracer.open_depth == 0
        (outer,) = tracer.roots
        assert outer.name == "outer" and outer.attributes == {"kind": "test"}
        (inner,) = outer.children
        # FakeClock ticks once per reading: 100, 101, 102, 103.
        assert (outer.start, outer.end) == (100.0, 103.0)
        assert (inner.start, inner.end) == (101.0, 102.0)
        assert outer.start <= inner.start and inner.end <= outer.end

    def test_out_of_order_finish_raises(self, tracer):
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(TraceError, match="out of order"):
            tracer.finish(outer)

    def test_finish_with_nothing_open_raises(self, tracer):
        span = tracer.start("only")
        tracer.finish(span)
        with pytest.raises(TraceError):
            tracer.finish(span)

    def test_exception_still_closes_the_span(self, tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.open_depth == 0
        assert tracer.roots[0].end is not None

    def test_event_is_instant_and_not_pushed(self, tracer):
        with tracer.span("outer"):
            marker = tracer.event("pruning.freeze", fixed_pairs=3)
            assert tracer.open_depth == 1  # events never open
        assert marker.duration == 0.0
        assert tracer.roots[0].children == [marker]

    def test_all_spans_walks_depth_first(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [span.name for span in tracer.all_spans()] == ["a", "b", "c"]


class TestFragments:
    def test_adopt_rebases_onto_open_span_and_tags_tid(self):
        worker = Tracer(clock=FakeClock(start=5000.0, step=1.0))
        with worker.span("candidate.evaluate"):
            with worker.span("graph.build"):
                pass
        fragments = worker.export_fragments()

        parent = Tracer(clock=FakeClock(start=100.0, step=1.0))
        dispatch = parent.start("workers.dispatch")
        adopted = parent.adopt(fragments, tid=4321)
        parent.finish(dispatch)

        (candidate,) = adopted
        # Re-based: the earliest fragment start lands on the open span's
        # start; the worker's 4-tick duration is preserved exactly.
        assert candidate.start == dispatch.start
        assert candidate.duration == 3.0
        assert candidate.tid == 4321 and candidate.children[0].tid == 4321
        assert candidate in dispatch.children

    def test_adopt_empty_fragments_is_a_noop(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.adopt([]) == []
        assert tracer.roots == []


class TestChromeExport:
    def test_complete_events_relative_microseconds(self, tracer):
        with tracer.span("outer", pairs=4):
            with tracer.span("inner"):
                pass
        trace = tracer.to_chrome_trace(pid=9)
        assert trace["displayTimeUnit"] == "ms"
        outer, inner = trace["traceEvents"]
        assert outer["ph"] == "X" and outer["pid"] == 9
        assert outer["ts"] == 0.0  # relative to the earliest span
        assert outer["dur"] == pytest.approx(3e6)
        assert inner["ts"] == pytest.approx(1e6)
        assert outer["args"] == {"pairs": 4}

    def test_empty_tracer_exports_empty_trace(self):
        assert Tracer().to_chrome_trace()["traceEvents"] == []


class TestJsonSafe:
    def test_passthrough_and_coercions(self):
        import numpy as np

        assert _json_safe({"a": (1, 2.5, "x", None)}) == {"a": [1, 2.5, "x"] + [None]}
        assert _json_safe(np.int64(3)) == 3
        assert _json_safe(np.float32(0.5)) == 0.5
        assert _json_safe(frozenset({"z"})) == ["z"]
        assert isinstance(_json_safe(object()), str)
