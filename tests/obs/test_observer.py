"""The Observer handle: null path, wiring, and non-interference.

The load-bearing invariant: attaching an observer never changes what the
pipeline computes — similarity values and the deterministic
``pair_updates`` work metric are identical with observation on and off.
"""

import logging

import numpy as np

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.obs import (
    NULL_OBSERVER,
    FakeClock,
    MetricsRegistry,
    Observer,
    Tracer,
)


class TestNullObserver:
    def test_observes_nothing(self):
        assert not NULL_OBSERVER.tracing
        assert not NULL_OBSERVER.enabled
        NULL_OBSERVER.count("x")
        NULL_OBSERVER.gauge("y", 1.0)
        NULL_OBSERVER.observe("z", 0.5)
        NULL_OBSERVER.event("marker", detail=1)

    def test_null_span_is_a_context_manager(self):
        with NULL_OBSERVER.span("anything", pairs=3) as span:
            span.attributes["written"] = True  # lands in a throwaway dict


class TestObserverWiring:
    def test_sinks_flip_the_flags(self):
        assert Observer(tracer=Tracer()).tracing
        assert not Observer(metrics=MetricsRegistry()).tracing
        assert Observer(metrics=MetricsRegistry()).enabled

    def test_clock_defaults_to_the_tracers(self):
        clock = FakeClock(start=7.0)
        observer = Observer(tracer=Tracer(clock=clock))
        assert observer.clock is clock

    def test_span_and_metrics_record(self):
        observer = Observer(tracer=Tracer(clock=FakeClock()), metrics=MetricsRegistry())
        with observer.span("graph.build", activities=6):
            observer.count("ems_fixpoint_total", 2.0)
        assert observer.tracer.roots[0].attributes == {"activities": 6}
        assert observer.metrics.get("ems_fixpoint_total").value == 2.0


class TestPipelineSpans:
    def test_engine_emits_fixpoint_iteration_and_freeze(self, fig1_graphs):
        observer = Observer(tracer=Tracer(), metrics=MetricsRegistry())
        result = EMSEngine(EMSConfig(), observer=observer).similarity(*fig1_graphs)
        assert observer.tracer.open_depth == 0
        names = [span.name for span in observer.tracer.all_spans()]
        (fixpoint,) = [n for n in names if n == "ems.fixpoint"]
        assert any(n.startswith("ems.iteration[") for n in names)
        assert names.count("pruning.freeze") == 2  # one instant per direction
        assert (
            observer.metrics.get("ems_pair_updates_total").value
            == result.pair_updates
        )

    def test_iteration_spans_account_every_pair_update(self, fig1_graphs):
        observer = Observer(tracer=Tracer())
        result = EMSEngine(EMSConfig(), observer=observer).similarity(*fig1_graphs)
        recorded = sum(
            span.attributes["pair_updates"]
            for span in observer.tracer.all_spans()
            if span.name.startswith("ems.iteration[")
        )
        assert recorded == result.pair_updates


class TestNonInterference:
    def test_engine_results_identical_with_observer(self, fig1_graphs):
        plain = EMSEngine(EMSConfig()).similarity(*fig1_graphs)
        observer = Observer(tracer=Tracer(), metrics=MetricsRegistry())
        observed = EMSEngine(EMSConfig(), observer=observer).similarity(*fig1_graphs)
        assert np.array_equal(plain.matrix.values, observed.matrix.values)
        assert plain.pair_updates == observed.pair_updates
        assert plain.iterations == observed.iterations

    def test_composite_results_identical_with_observer(self, fig1_logs):
        kwargs = dict(delta=0.001, min_confidence=0.9, max_run_length=3)
        plain = CompositeMatcher(EMSConfig(), **kwargs).match(*fig1_logs)
        observer = Observer(tracer=Tracer(), metrics=MetricsRegistry())
        observed = CompositeMatcher(EMSConfig(), observer=observer, **kwargs).match(
            *fig1_logs
        )
        assert np.array_equal(plain.matrix.values, observed.matrix.values)
        assert plain.accepted_second == observed.accepted_second
        assert plain.stats.pair_updates == observed.stats.pair_updates
        assert observer.tracer.open_depth == 0


class TestSharedMemoryFallback:
    def test_fallback_is_logged_and_counted(self, caplog):
        observer = Observer(metrics=MetricsRegistry())
        matcher = CompositeMatcher(EMSConfig(), observer=observer)
        with caplog.at_level(logging.WARNING, logger="repro"):
            matcher._note_shared_memory_fallback()
            matcher._note_shared_memory_fallback()
        assert (
            observer.metrics.get("workers_shared_memory_fallbacks_total").value == 2.0
        )
        records = [
            record for record in caplog.records
            if record.name == "repro.core.composite"
        ]
        assert records and "shared-memory" in records[0].getMessage()
