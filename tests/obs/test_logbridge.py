"""Unit tests of the stdlib-logging bridge."""

import io
import logging

import pytest

from repro.obs import configure_logging, get_logger
from repro.obs.logbridge import ROOT_LOGGER


@pytest.fixture(autouse=True)
def _restore_root_logger():
    """Leave the shared ``repro`` root logger as we found it."""
    root = logging.getLogger(ROOT_LOGGER)
    handlers, level = list(root.handlers), root.level
    yield
    root.handlers[:] = handlers
    root.setLevel(level)


class TestGetLogger:
    def test_bare_suffix_is_namespaced(self):
        assert get_logger("core.ems").name == "repro.core.ems"

    def test_module_dunder_name_passes_through(self):
        assert get_logger("repro.core.composite").name == "repro.core.composite"
        assert get_logger("repro").name == "repro"

    def test_loggers_hang_under_the_root(self):
        assert get_logger("obs").parent.name == ROOT_LOGGER


class TestConfigureLogging:
    def test_attaches_handler_and_level(self):
        stream = io.StringIO()
        root = configure_logging("info", stream=stream)
        assert root.level == logging.INFO
        get_logger("core.composite").info("hello %s", "world")
        output = stream.getvalue()
        assert "hello world" in output
        assert "repro.core.composite" in output

    def test_idempotent_no_duplicate_handlers(self):
        configure_logging("warning", stream=io.StringIO())
        before = len(logging.getLogger(ROOT_LOGGER).handlers)
        configure_logging("debug", stream=io.StringIO())
        assert len(logging.getLogger(ROOT_LOGGER).handlers) == before

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    def test_silent_by_default(self):
        # The library attaches only a NullHandler at import time; logging
        # below the configured threshold produces no output.
        stream = io.StringIO()
        configure_logging("error", stream=stream)
        get_logger("core.ems").warning("dropped")
        assert stream.getvalue() == ""
