"""Tests for the activity name pools."""

import random

import pytest

from repro.similarity.qgrams import qgram_cosine
from repro.synthesis.names import (
    AREA_ACTIVITIES,
    FUNCTIONAL_AREAS,
    area_pool,
    garble_mapping,
    opaque_name,
)


class TestPools:
    def test_ten_functional_areas(self):
        assert len(FUNCTIONAL_AREAS) == 10

    def test_pools_non_trivial(self):
        for area in FUNCTIONAL_AREAS:
            assert len(area_pool(area)) >= 10

    def test_labels_unique_within_pool(self):
        for area, pool in AREA_ACTIVITIES.items():
            firsts = [first for first, _ in pool]
            seconds = [second for _, second in pool]
            assert len(set(firsts)) == len(firsts), area
            assert len(set(seconds)) == len(seconds), area

    def test_surface_variants_share_vocabulary(self):
        """q-gram cosine must be informative on un-garbled variants."""
        informative = 0
        total = 0
        for pool in AREA_ACTIVITIES.values():
            for first, second in pool:
                total += 1
                if qgram_cosine(first, second) > 0.3:
                    informative += 1
        assert informative / total > 0.8

    def test_unknown_area(self):
        with pytest.raises(KeyError):
            area_pool("nonexistent")

    def test_pool_returns_copy(self):
        pool = area_pool("procurement")
        pool.clear()
        assert area_pool("procurement")


class TestOpaqueNames:
    def test_deterministic(self):
        assert opaque_name("Check Inventory") == opaque_name("Check Inventory")

    def test_salt_changes_output(self):
        assert opaque_name("x", "salt1") != opaque_name("x", "salt2")

    def test_no_shared_qgrams(self):
        assert qgram_cosine("Check Inventory", opaque_name("Check Inventory")) < 0.1

    def test_garble_mapping_fraction(self):
        mapping = garble_mapping(["a", "b", "c", "d"], random.Random(0), fraction=0.5)
        assert len(mapping) == 2

    def test_garble_mapping_validates(self):
        with pytest.raises(ValueError):
            garble_mapping(["a"], random.Random(0), fraction=2.0)
