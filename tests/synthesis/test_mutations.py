"""Tests for heterogeneity-injecting mutations."""

import random

import pytest

from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.synthesis.mutations import (
    dislocate,
    opacify,
    shuffle_case_order,
    split_activities,
)


@pytest.fixture()
def log() -> EventLog:
    return EventLog([["a", "b", "c"], ["a", "c", "b"]] * 3)


class TestOpacify:
    def test_full_opacification(self, log):
        garbled, mapping = opacify(log, random.Random(0), fraction=1.0)
        assert set(mapping) == {"a", "b", "c"}
        assert garbled.activities() == frozenset(mapping.values())
        assert all(name.startswith("0x") for name in mapping.values())

    def test_partial_opacification(self, log):
        garbled, mapping = opacify(log, random.Random(0), fraction=0.34)
        assert len(mapping) == 1
        assert garbled.activities() & {"a", "b", "c"}

    def test_structure_preserved(self, log):
        garbled, mapping = opacify(log, random.Random(0))
        inverse = {value: key for key, value in mapping.items()}
        assert garbled.relabel(inverse) == log

    def test_deterministic(self, log):
        first = opacify(log, random.Random(4))
        second = opacify(log, random.Random(4))
        assert first[1] == second[1]


class TestDislocate:
    def test_begin(self, log):
        result = dislocate(log, 1, "begin")
        assert all(trace.activities[0] != "a" for trace in result)

    def test_end(self, log):
        result = dislocate(log, 1, "end")
        assert all(len(trace) == 2 for trace in result)

    def test_both(self, log):
        result = dislocate(log, 1, "both")
        assert all(len(trace) == 1 for trace in result)

    def test_all_traces_removed_raises(self, log):
        with pytest.raises(SynthesisError):
            dislocate(log, 2, "both")

    def test_negative_rejected(self, log):
        with pytest.raises(SynthesisError):
            dislocate(log, -1)


class TestSplitActivities:
    def test_split_into_adjacent_run(self, log):
        split, parts = split_activities(log, ["b"], parts=2)
        run = parts["b"]
        assert len(run) == 2
        for trace in split:
            activities = trace.activities
            assert "b" not in activities
            index = activities.index(run[0])
            assert activities[index + 1] == run[1]

    def test_unknown_activity_rejected(self, log):
        with pytest.raises(SynthesisError):
            split_activities(log, ["zzz"])

    def test_parts_validated(self, log):
        with pytest.raises(SynthesisError):
            split_activities(log, ["a"], parts=1)

    def test_timestamps_copied_to_parts(self):
        from repro.logs.events import Event
        from repro.logs.log import EventLog as Log

        log = Log([[Event("a", 5.0)]])
        split, parts = split_activities(log, ["a"], parts=3)
        assert all(event.timestamp == 5.0 for event in split.traces[0])


class TestNoiseOperators:
    def test_drop_zero_probability_is_identity(self, log):
        from repro.synthesis.mutations import drop_random_events

        assert drop_random_events(log, random.Random(0), 0.0) == log

    def test_drop_reduces_event_mass(self, log):
        from repro.synthesis.mutations import drop_random_events

        thinned = drop_random_events(log, random.Random(1), 0.5)
        original_events = sum(len(trace) for trace in log)
        thinned_events = sum(len(trace) for trace in thinned)
        assert thinned_events < original_events

    def test_drop_validates(self, log):
        from repro.synthesis.mutations import drop_random_events

        with pytest.raises(SynthesisError):
            drop_random_events(log, random.Random(0), 1.0)

    def test_duplicate_grows_event_mass(self, log):
        from repro.synthesis.mutations import duplicate_random_events

        thick = duplicate_random_events(log, random.Random(1), 0.5)
        assert sum(len(t) for t in thick) > sum(len(t) for t in log)
        assert thick.activities() == log.activities()

    def test_swap_preserves_multiset_per_trace(self, log):
        from collections import Counter

        from repro.synthesis.mutations import swap_adjacent_events

        swapped = swap_adjacent_events(log, random.Random(2), 0.5)
        for before, after in zip(log, swapped):
            assert Counter(before.activities) == Counter(after.activities)

    def test_swap_changes_some_order(self, log):
        from repro.synthesis.mutations import swap_adjacent_events

        swapped = swap_adjacent_events(log, random.Random(2), 0.9)
        assert any(
            before.activities != after.activities
            for before, after in zip(log, swapped)
        )


class TestShuffle:
    def test_multiset_preserved(self, log):
        shuffled = shuffle_case_order(log, random.Random(0))
        assert shuffled == log  # EventLog equality is order-insensitive
