"""Tests pinning the Figure 1 fixture to the paper's frequencies."""

import pytest

from repro.logs.stats import compute_statistics
from repro.synthesis.examples import (
    SUBSIDIARY_1_NAMES,
    SUBSIDIARY_2_NAMES,
    figure1_logs,
    turbine_order_logs,
)


class TestFigure1:
    def test_frequencies_match_figure2(self):
        log_first, log_second, _ = figure1_logs()
        stats_first = compute_statistics(log_first)
        assert stats_first.activity_frequencies["A"] == pytest.approx(0.4)
        assert stats_first.pair_frequencies[("A", "C")] == pytest.approx(0.4)
        stats_second = compute_statistics(log_second)
        assert stats_second.activity_frequencies["1"] == pytest.approx(1.0)
        assert stats_second.activity_frequencies["2"] == pytest.approx(0.4)

    def test_truth_includes_composite(self):
        _, _, truth = figure1_logs()
        composites = [c for c in truth if c.is_composite()]
        assert len(composites) == 1
        assert composites[0].left == frozenset({"C", "D"})

    def test_truth_excludes_dislocated_extra(self):
        _, _, truth = figure1_logs()
        matched_seconds = {activity for c in truth for activity in c.right}
        assert "1" not in matched_seconds  # Order Accepted has no counterpart


class TestTurbineNames:
    def test_name_maps_cover_all_events(self):
        assert set(SUBSIDIARY_1_NAMES) == set("ABCDEF")
        assert set(SUBSIDIARY_2_NAMES) == set("123456")

    def test_named_logs_consistent_with_letter_logs(self):
        letters_first, _, _ = figure1_logs()
        named_first, named_second, truth = turbine_order_logs()
        assert len(named_first) == len(letters_first)
        assert "Paid by Cash" in named_first.activities()
        assert "?????" in named_second.activities()
        # The garbled Delivery event still participates in ground truth.
        assert any("?????" in c.right for c in truth)
