"""Tests for process-tree semantics."""

import random

import pytest

from repro.exceptions import SynthesisError
from repro.synthesis.process_tree import (
    Choice,
    Leaf,
    Loop,
    Parallel,
    Sequence,
    Silent,
    interleave,
)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(42)


class TestLeaves:
    def test_leaf_sample(self, rng):
        assert Leaf("a").sample(rng) == ["a"]

    def test_leaf_validates(self):
        with pytest.raises(SynthesisError):
            Leaf("")

    def test_silent_sample(self, rng):
        assert Silent().sample(rng) == []
        assert Silent().activities() == frozenset()


class TestOperators:
    def test_sequence_order(self, rng):
        tree = Sequence([Leaf("a"), Leaf("b"), Leaf("c")])
        assert tree.sample(rng) == ["a", "b", "c"]

    def test_choice_picks_one_child(self, rng):
        tree = Choice([Leaf("a"), Leaf("b")])
        samples = {tuple(tree.sample(rng)) for _ in range(50)}
        assert samples == {("a",), ("b",)}

    def test_choice_weights_bias(self, rng):
        tree = Choice([Leaf("a"), Leaf("b")], weights=[99.0, 1.0])
        samples = [tree.sample(rng)[0] for _ in range(200)]
        assert samples.count("a") > 150

    def test_choice_weight_validation(self):
        with pytest.raises(SynthesisError):
            Choice([Leaf("a")], weights=[1.0, 2.0])
        with pytest.raises(SynthesisError):
            Choice([Leaf("a")], weights=[0.0])

    def test_parallel_contains_all_preserving_order(self, rng):
        tree = Parallel([Sequence([Leaf("a"), Leaf("b")]), Leaf("x")])
        for _ in range(30):
            sample = tree.sample(rng)
            assert sorted(sample) == ["a", "b", "x"]
            assert sample.index("a") < sample.index("b")

    def test_duplicate_activities_rejected(self):
        with pytest.raises(SynthesisError):
            Sequence([Leaf("a"), Leaf("a")])

    def test_activities_aggregate(self):
        tree = Sequence([Leaf("a"), Choice([Leaf("b"), Silent()])])
        assert tree.activities() == frozenset({"a", "b"})


class TestLoop:
    def test_no_redo_when_probability_zero(self, rng):
        tree = Loop(Leaf("a"), Leaf("r"), redo_probability=0.0)
        assert tree.sample(rng) == ["a"]

    def test_redo_pattern(self, rng):
        tree = Loop(Leaf("a"), Leaf("r"), redo_probability=0.9, max_repeats=2)
        for _ in range(30):
            sample = tree.sample(rng)
            assert sample[0] == "a"
            # Pattern is a (r a)^k with k <= 2.
            assert sample in (["a"], ["a", "r", "a"], ["a", "r", "a", "r", "a"])

    def test_max_repeats_bounds_length(self, rng):
        tree = Loop(Leaf("a"), Leaf("r"), redo_probability=0.99, max_repeats=3)
        assert max(len(tree.sample(rng)) for _ in range(100)) <= 7

    def test_validation(self):
        with pytest.raises(SynthesisError):
            Loop(Leaf("a"), Leaf("r"), redo_probability=1.0)
        with pytest.raises(SynthesisError):
            Loop(Leaf("a"), Leaf("a"))


class TestInterleave:
    def test_preserves_branch_order(self, rng):
        for _ in range(20):
            result = interleave([["a1", "a2", "a3"], ["b1", "b2"]], rng)
            assert [x for x in result if x.startswith("a")] == ["a1", "a2", "a3"]
            assert [x for x in result if x.startswith("b")] == ["b1", "b2"]

    def test_empty_branches_skipped(self, rng):
        assert interleave([[], ["x"]], rng) == ["x"]

    def test_describe_renders(self):
        tree = Sequence([Leaf("a"), Choice([Leaf("b"), Leaf("c")])])
        assert tree.describe() == "->(a, X(b, c))"
