"""Tests for the benchmark corpora."""

import pytest

from repro.synthesis.corpus import (
    REAL_CORPUS_PLAN,
    build_dislocation_pair,
    build_real_like_corpus,
    build_scalability_pair,
    build_scalability_pairs,
    composite_pairs,
    make_log_pair,
    singleton_testbeds,
)


class TestMakeLogPair:
    def test_truth_links_both_logs(self):
        pair = make_log_pair("order-processing", 8, "DS-B", seed=3)
        activities_first = pair.log_first.activities()
        activities_second = pair.log_second.activities()
        for correspondence in pair.truth:
            assert correspondence.left <= activities_first
            assert correspondence.right <= activities_second

    def test_deterministic(self):
        first = make_log_pair("procurement", 8, "DS-F", seed=5)
        second = make_log_pair("procurement", 8, "DS-F", seed=5)
        assert first.log_first == second.log_first
        assert first.truth == second.truth

    def test_composite_pair_has_composite_truth(self):
        pair = make_log_pair(
            "it-service", 8, "COMPOSITE", seed=9, composite_splits=2
        )
        assert any(c.is_composite() for c in pair.truth)

    def test_opaque_fraction_garbles(self):
        pair = make_log_pair("logistics", 8, "DS-F", seed=1, opaque_fraction=1.0)
        assert all(
            name.startswith("0x") for name in pair.log_second.activities()
        )

    def test_unknown_testbed(self):
        from repro.exceptions import SynthesisError

        with pytest.raises(SynthesisError):
            make_log_pair("logistics", 8, "DS-X", seed=1)

    def test_oversized_request_rejected(self):
        from repro.exceptions import SynthesisError

        with pytest.raises(SynthesisError):
            make_log_pair("expense-claims", 100, "DS-F", seed=1)


class TestRealLikeCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_real_like_corpus(traces_per_log=30)

    def test_plan_counts(self, corpus):
        assert len(corpus) == sum(count for _, count in REAL_CORPUS_PLAN) == 149
        testbeds = singleton_testbeds(corpus)
        assert len(testbeds["DS-F"]) == 23
        assert len(testbeds["DS-B"]) == 22
        assert len(testbeds["DS-FB"]) == 58
        assert len(composite_pairs(corpus)) == 46

    def test_all_areas_used(self, corpus):
        assert len({pair.area for pair in corpus}) == 10

    def test_every_pair_has_truth(self, corpus):
        assert all(len(pair.truth) >= 3 for pair in corpus)

    def test_names_unique(self, corpus):
        names = [pair.name for pair in corpus]
        assert len(set(names)) == len(names)


class TestCorpusStability:
    def test_canonical_corpus_digest(self):
        """EXPERIMENTS.md records measurements on the seed-2014 corpus;
        if this digest moves, those tables no longer describe what
        `python -m repro.experiments` produces and must be regenerated."""
        import hashlib

        corpus = build_real_like_corpus(seed=2014, traces_per_log=10)
        digest = hashlib.sha256()
        for pair in corpus:
            digest.update(pair.name.encode())
            for log in (pair.log_first, pair.log_second):
                for trace in log:
                    digest.update("|".join(trace.activities).encode())
        assert digest.hexdigest()[:16] == "9d6569b7571da3b7"


class TestScalabilityCorpus:
    def test_pair_size(self):
        pair = build_scalability_pair(20, seed=2, traces_per_log=30)
        assert len(pair.log_first.activities()) == 20
        assert len(pair.truth) >= 18  # reweighted playout may rarely miss one

    def test_truth_bijective_across_vocabularies(self):
        pair = build_scalability_pair(10, seed=4, traces_per_log=30)
        lefts = [min(c.left) for c in pair.truth]
        rights = [min(c.right) for c in pair.truth]
        assert all(left.startswith("Activity") for left in lefts)
        assert all(right.startswith("Task") for right in rights)
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_build_many(self):
        corpus = build_scalability_pairs(sizes=(10, 20), per_size=2, traces_per_log=20)
        assert set(corpus) == {10, 20}
        assert all(len(pairs) == 2 for pairs in corpus.values())


class TestDislocationPair:
    def test_prefix_removed(self):
        base = build_scalability_pair(15, seed=6, traces_per_log=30)
        dislocated = build_dislocation_pair(15, removed=2, seed=6, traces_per_log=30)
        mean_base = sum(len(t) for t in base.log_second) / len(base.log_second)
        mean_disl = sum(len(t) for t in dislocated.log_second) / len(dislocated.log_second)
        assert mean_disl == pytest.approx(mean_base - 2, abs=1e-9)

    def test_truth_shrinks_with_removal(self):
        small = build_dislocation_pair(15, removed=0, seed=6, traces_per_log=30)
        large = build_dislocation_pair(15, removed=5, seed=6, traces_per_log=30)
        assert len(large.truth) <= len(small.truth)
