"""Tests for model playout."""

import random

import pytest

from repro.exceptions import SynthesisError
from repro.synthesis.playout import BASE_TIMESTAMP, play_out
from repro.synthesis.process_tree import Choice, Leaf, Sequence, Silent


class TestPlayOut:
    def test_trace_count(self):
        log = play_out(Sequence([Leaf("a"), Leaf("b")]), 25, random.Random(0))
        assert len(log) == 25

    def test_timestamps_monotone_within_trace(self):
        log = play_out(Sequence([Leaf("a"), Leaf("b"), Leaf("c")]), 10, random.Random(0))
        for trace in log:
            stamps = [event.timestamp for event in trace]
            assert all(earlier < later for earlier, later in zip(stamps, stamps[1:]))
            assert stamps[0] > BASE_TIMESTAMP

    def test_without_timestamps(self):
        log = play_out(Leaf("a"), 3, random.Random(0), with_timestamps=False)
        assert all(event.timestamp is None for trace in log for event in trace)

    def test_case_ids_unique(self):
        log = play_out(Leaf("a"), 5, random.Random(0), case_prefix="k")
        assert [trace.case_id for trace in log] == [f"k-{i}" for i in range(5)]

    def test_empty_samples_redrawn(self):
        tree = Choice([Leaf("a"), Silent()])
        log = play_out(tree, 30, random.Random(3))
        assert len(log) == 30
        assert all(len(trace) >= 1 for trace in log)

    def test_always_empty_model_rejected(self):
        with pytest.raises(SynthesisError):
            play_out(Silent(), 5, random.Random(0))

    def test_num_traces_validated(self):
        with pytest.raises(SynthesisError):
            play_out(Leaf("a"), 0, random.Random(0))

    def test_deterministic(self):
        tree = Choice([Leaf("a"), Leaf("b")])
        first = play_out(tree, 20, random.Random(5))
        second = play_out(tree, 20, random.Random(5))
        assert first == second
