"""Tests for random model generation, reweighting and perturbation."""

import random

import pytest

from repro.exceptions import SynthesisError
from repro.synthesis.generator import (
    ACYCLIC_PROFILE,
    GeneratorProfile,
    perturbed,
    random_process_tree,
    reweighted,
)
from repro.synthesis.playout import play_out
from repro.synthesis.process_tree import Loop


def contains_loop(tree) -> bool:
    if isinstance(tree, Loop):
        return True
    children = getattr(tree, "children", ())
    if isinstance(tree, Loop):
        children = (tree.body, tree.redo)
    return any(contains_loop(child) for child in children)


class TestRandomProcessTree:
    def test_every_activity_exactly_once(self):
        rng = random.Random(1)
        names = [f"a{i}" for i in range(20)]
        tree = random_process_tree(names, rng)
        assert tree.activities() == frozenset(names)

    def test_deterministic_given_seed(self):
        names = [f"a{i}" for i in range(12)]
        first = random_process_tree(names, random.Random(5)).describe()
        second = random_process_tree(names, random.Random(5)).describe()
        assert first == second

    def test_single_activity(self):
        tree = random_process_tree(["only"], random.Random(0))
        assert tree.sample(random.Random(0)) == ["only"]

    def test_rejects_duplicates(self):
        with pytest.raises(SynthesisError):
            random_process_tree(["a", "a"], random.Random(0))

    def test_rejects_empty(self):
        with pytest.raises(SynthesisError):
            random_process_tree([], random.Random(0))

    def test_acyclic_profile_has_no_loops(self):
        rng = random.Random(3)
        for _ in range(10):
            tree = random_process_tree([f"a{i}" for i in range(15)], rng, ACYCLIC_PROFILE)
            assert not contains_loop(tree)

    def test_profile_validation(self):
        with pytest.raises(SynthesisError):
            GeneratorProfile(weight_sequence=0, weight_choice=0,
                             weight_parallel=0, weight_loop=0)
        with pytest.raises(SynthesisError):
            GeneratorProfile(max_branches=1)


class TestReweighted:
    def test_structure_preserved(self):
        rng = random.Random(7)
        tree = random_process_tree([f"a{i}" for i in range(15)], rng)
        copy = reweighted(tree, random.Random(8))
        assert copy.activities() == tree.activities()
        assert copy.describe() == tree.describe()

    def test_frequencies_shift(self):
        rng = random.Random(9)
        names = [f"a{i}" for i in range(10)]
        tree = random_process_tree(names, rng, GeneratorProfile(weight_choice=5.0))
        log_original = play_out(tree, 400, random.Random(1))
        log_reweighted = play_out(reweighted(tree, rng, spread=0.5), 400, random.Random(1))
        counts_a = log_original.activity_trace_counts()
        counts_b = log_reweighted.activity_trace_counts()
        assert any(
            abs(counts_a[name] - counts_b.get(name, 0)) > 10 for name in counts_a
        )


class TestPerturbed:
    def test_activities_preserved(self):
        rng = random.Random(21)
        tree = random_process_tree([f"a{i}" for i in range(12)], rng)
        swapped = perturbed(tree, random.Random(22), swaps=2)
        assert swapped.activities() == tree.activities()

    def test_zero_swaps_is_identity_structure(self):
        rng = random.Random(23)
        tree = random_process_tree([f"a{i}" for i in range(8)], rng)
        assert perturbed(tree, random.Random(1), swaps=0).describe() == tree.describe()

    def test_swap_changes_order(self):
        rng = random.Random(25)
        tree = random_process_tree([f"a{i}" for i in range(10)], rng)
        swapped = perturbed(tree, random.Random(26), swaps=1)
        assert swapped.describe() != tree.describe()

    def test_negative_swaps_rejected(self):
        tree = random_process_tree(["a", "b"], random.Random(0))
        with pytest.raises(SynthesisError):
            perturbed(tree, random.Random(0), swaps=-1)
