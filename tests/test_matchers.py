"""Integration tests for the high-level matcher adapters."""

import pytest

from repro.core.config import EMSConfig
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.matching.evaluation import evaluate
from repro.similarity.labels import QGramCosineSimilarity
from repro.synthesis.corpus import make_log_pair
from repro.synthesis.examples import turbine_order_logs


class TestEMSMatcher:
    def test_figure1_matching(self, fig1_logs, fig1_truth):
        outcome = EMSMatcher().match(*fig1_logs)
        result = evaluate(fig1_truth, outcome.correspondences)
        # Singleton matching cannot get the composite {C, D} fully right,
        # but everything else should match.
        assert result.f_measure >= 0.8

    def test_dislocated_match_found(self, fig1_logs):
        outcome = EMSMatcher().match(*fig1_logs)
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert ("A", "2") in found
        assert ("B", "3") in found

    def test_estimation_variant_named(self):
        matcher = EMSMatcher(EMSConfig(estimation_iterations=3))
        assert matcher.name == "EMS+es"

    def test_diagnostics_present(self, fig1_logs):
        outcome = EMSMatcher().match(*fig1_logs)
        assert outcome.diagnostics["pair_updates"] > 0

    def test_label_similarity_pins_equal_labels(self):
        log_first, log_second, truth = turbine_order_logs()
        blended = EMSMatcher(
            EMSConfig(alpha=0.5), QGramCosineSimilarity()
        ).match(log_first, log_second)
        found = {(min(c.left), min(c.right)) for c in blended.correspondences}
        # The pairs whose labels literally agree must be matched.
        assert ("Paid by Cash", "Paid by Cash") in found
        assert ("Paid by Credit Card", "Paid by Credit Card") in found
        assert evaluate(truth, blended.correspondences).f_measure >= 0.5

    def test_threshold_prunes_found_pairs(self, fig1_logs):
        all_pairs = EMSMatcher(threshold=0.0).match(*fig1_logs)
        strict = EMSMatcher(threshold=0.6).match(*fig1_logs)
        assert len(strict.correspondences) < len(all_pairs.correspondences)

    def test_min_edge_frequency_still_matches(self, fig1_logs):
        outcome = EMSMatcher(min_edge_frequency=0.3).match(*fig1_logs)
        assert outcome.correspondences


class TestEMSCompositeMatcher:
    @pytest.fixture()
    def matcher(self) -> EMSCompositeMatcher:
        return EMSCompositeMatcher(delta=0.005, min_confidence=0.9, max_run_length=2)

    def test_perfect_on_figure1(self, fig1_logs, fig1_truth, matcher):
        outcome = matcher.match(*fig1_logs)
        result = evaluate(fig1_truth, outcome.correspondences)
        assert result.f_measure == pytest.approx(1.0)

    def test_composite_correspondence_reported(self, fig1_logs, matcher):
        outcome = matcher.match(*fig1_logs)
        composites = [c for c in outcome.correspondences if c.is_composite()]
        assert len(composites) == 1
        assert composites[0].left == frozenset({"C", "D"})

    def test_diagnostics(self, fig1_logs, matcher):
        outcome = matcher.match(*fig1_logs)
        assert outcome.diagnostics["composites_accepted"] == 1.0
        assert outcome.diagnostics["pair_updates"] > 0

    def test_estimation_name(self):
        matcher = EMSCompositeMatcher(EMSConfig(estimation_iterations=5))
        assert matcher.name == "EMS+es"

    def test_beats_singleton_on_synthetic_composite_pair(self):
        pair = make_log_pair(
            "manufacturing", 8, "COMPOSITE", seed=12,
            composite_splits=2, traces_per_log=80,
        )
        singleton = EMSMatcher().match(pair.log_first, pair.log_second)
        composite = EMSCompositeMatcher(
            delta=0.002, min_confidence=0.9, max_run_length=3
        ).match(pair.log_first, pair.log_second)
        singleton_f = evaluate(pair.truth, singleton.correspondences).f_measure
        composite_f = evaluate(pair.truth, composite.correspondences).f_measure
        assert composite_f >= singleton_f
