"""Tests for ASCII reporting."""

import pytest

from repro.experiments.reporting import FigureResult, format_table


class TestFormatTable:
    def test_alignment(self):
        rendered = format_table(["name", "value"], [["a", 1.0], ["longer", 0.5]])
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2

    def test_floats_formatted(self):
        rendered = format_table(["x"], [[0.123456]])
        assert "0.123" in rendered
        assert "0.1234" not in rendered

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestFigureResult:
    def test_render_contains_title_and_notes(self):
        result = FigureResult(
            figure="Figure 0",
            title="demo",
            headers=["k"],
            rows=[["v"]],
            notes=["a note"],
        )
        rendered = result.render()
        assert "Figure 0: demo" in rendered
        assert "note: a note" in rendered

    def test_column_accessor(self):
        result = FigureResult("f", "t", ["a", "b"], [[1, 2], [3, 4]])
        assert result.column("b") == [2, 4]

    def test_unknown_column(self):
        result = FigureResult("f", "t", ["a"], [[1]])
        with pytest.raises(ValueError):
            result.column("zzz")
