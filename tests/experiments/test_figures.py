"""Smoke tests for the figure drivers (tiny corpora; shapes only)."""

import pytest

from repro.experiments.figures import (
    ALL_FIGURES,
    fig5,
    fig6,
    fig7,
    fig9,
    fig12,
    fig13,
)


class TestRegistry:
    def test_all_twelve_figures_registered(self):
        assert set(ALL_FIGURES) == {f"fig{i}" for i in range(3, 15)}


class TestSmallRuns:
    """Tiny instantiations: assert structure and the paper's directional claims."""

    def test_fig5_estimation_tradeoff(self):
        result = fig5(budgets=(0, None), pair_count=2)
        assert [row[0] for row in result.rows] == [0, "MAX"]
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0
        t_at_0, t_at_max = (row[2] for row in result.rows)
        assert t_at_0 <= t_at_max  # I = 0 skips the exact iterations

    def test_fig6_pruning_reduces_updates(self):
        result = fig6(pair_count=2)
        for row in result.rows:
            _, updates_noprune, updates_prune, _, _ = row
            assert updates_prune <= updates_noprune

    def test_fig7_threshold_zero_baseline(self):
        result = fig7(thresholds=(0.0, 0.25), pair_count=2)
        assert len(result.rows) == 2
        assert result.rows[0][0] == 0.0

    def test_fig9_dislocation_trend(self):
        result = fig9(removed=(0, 4), size=12, per_setting=1, traces_per_log=40)
        f_ems = result.column("f(EMS)")
        assert f_ems[0] >= f_ems[-1]  # accuracy drops with dislocation

    def test_fig12_variants(self):
        result = fig12(pair_count=1)
        assert [row[0] for row in result.rows] == ["none", "Uc", "Bd", "Uc+Bd"]
        updates = {row[0]: row[1] for row in result.rows}
        assert updates["Uc+Bd"] <= updates["none"]

    def test_fig13_delta_sweep_rows(self):
        result = fig13(deltas=(0.2, 0.01), pair_count=1)
        assert [row[0] for row in result.rows] == [0.2, 0.01]
        # Lower delta accepts at least as many composites.
        assert result.rows[1][3] >= result.rows[0][3]
