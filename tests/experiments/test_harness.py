"""Tests for the experiment harness."""

import pytest

from repro.baselines.common import Evaluation, EventMatcher
from repro.exceptions import SearchBudgetExceeded
from repro.experiments.harness import (
    aggregate_runs,
    composite_matchers,
    default_label_similarity,
    mean_diagnostic,
    run_matcher_on_pair,
    run_matrix,
    singleton_matchers,
)
from repro.matching.evaluation import Correspondence
from repro.synthesis.corpus import LogPair
from repro.synthesis.examples import figure1_logs


class _PerfectMatcher(EventMatcher):
    name = "perfect"

    def __init__(self, truth):
        self.truth = truth

    def evaluate(self, log_first, log_second, members_first, members_second):
        return Evaluation(objective=1.0, pairs=(), diagnostics={"calls": 1.0})

    def match(self, log_first, log_second):
        from repro.baselines.common import MatchOutcome

        return MatchOutcome(tuple(self.truth), 1.0, {"calls": 1.0})


class _ExplodingMatcher(EventMatcher):
    name = "exploding"

    def evaluate(self, log_first, log_second, members_first, members_second):
        raise SearchBudgetExceeded("too big")


@pytest.fixture()
def pair() -> LogPair:
    log_first, log_second, truth = figure1_logs()
    return LogPair("fig1", "paper", "DS-B", log_first, log_second, truth)


class TestRunMatcher:
    def test_perfect_run(self, pair):
        run = run_matcher_on_pair(_PerfectMatcher(pair.truth), pair)
        assert run.finished
        assert run.f_measure == 1.0
        assert run.seconds >= 0.0
        assert run.diagnostics["calls"] == 1.0

    def test_budget_exceeded_becomes_dnf(self, pair):
        run = run_matcher_on_pair(_ExplodingMatcher(), pair)
        assert not run.finished
        assert run.f_measure == 0.0

    def test_run_matrix_order(self, pair):
        matchers = [_PerfectMatcher(pair.truth), _ExplodingMatcher()]
        runs = run_matrix(matchers, [pair, pair])
        assert [run.matcher_name for run in runs] == [
            "perfect", "perfect", "exploding", "exploding",
        ]


class TestAggregation:
    def test_aggregate_runs(self, pair):
        runs = run_matrix([_PerfectMatcher(pair.truth), _ExplodingMatcher()], [pair])
        aggregates = aggregate_runs(runs)
        assert aggregates["perfect"].mean_f_measure == 1.0
        assert aggregates["perfect"].dnf_count == 0
        assert aggregates["exploding"].dnf_count == 1
        assert aggregates["exploding"].mean_f_measure == 0.0

    def test_mean_diagnostic(self, pair):
        runs = run_matrix([_PerfectMatcher(pair.truth)], [pair, pair])
        assert mean_diagnostic(runs, "calls") == 1.0
        assert mean_diagnostic(runs, "missing") == 0.0


class TestLineups:
    def test_singleton_lineup_names(self):
        names = [matcher.name for matcher in singleton_matchers()]
        assert names == ["EMS", "EMS+es", "GED", "OPQ", "BHV"]

    def test_composite_lineup_names(self):
        names = [matcher.name for matcher in composite_matchers()]
        assert names == ["EMS", "EMS+es", "GED", "OPQ", "BHV"]

    def test_label_lineup_uses_half_alpha(self):
        matchers = singleton_matchers(label_similarity=default_label_similarity())
        ems = matchers[0]
        assert ems.config.alpha == 0.5
