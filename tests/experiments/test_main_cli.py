"""Tests for the experiments CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import FULL_PARAMETERS, main
from repro.experiments.figures import ALL_FIGURES


class TestArguments:
    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_full_parameters_cover_known_figures_only(self):
        assert set(FULL_PARAMETERS) <= set(ALL_FIGURES)


class TestExecution:
    def test_single_quick_figure(self, capsys):
        exit_code = main(["fig7"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "min frequency" in output
        assert "completed in" in output

    def test_output_directory_written(self, tmp_path, capsys):
        import json

        exit_code = main(["fig7", "--output", str(tmp_path)])
        assert exit_code == 0
        assert (tmp_path / "fig7.txt").read_text(encoding="utf-8").startswith("Figure 7")
        payload = json.loads((tmp_path / "fig7.json").read_text(encoding="utf-8"))
        assert payload["figure"] == "Figure 7"
        assert payload["headers"][0] == "min frequency"
        assert not payload["full"]
