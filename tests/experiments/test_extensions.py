"""Tests for the extension experiment drivers."""

from repro.experiments.extensions import (
    EXTENSION_FIGURES,
    ext_ablation,
    ext_estimation_error,
    ext_noise,
)


class TestRegistry:
    def test_all_extensions_registered(self):
        assert set(EXTENSION_FIGURES) == {
            "ext-noise",
            "ext-baselines",
            "ext-ablation",
            "ext-estimation-error",
        }


class TestNoise:
    def test_zero_noise_equals_clean_run(self):
        result = ext_noise(levels=(0.0,), pair_count=2)
        row = result.rows[0]
        # All three noise kinds at probability 0 are the identical run.
        assert row[1] == row[2] == row[3]

    def test_noise_levels_in_rows(self):
        result = ext_noise(levels=(0.0, 0.2), pair_count=2)
        assert [row[0] for row in result.rows] == [0.0, 0.2]
        for row in result.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 1.0


class TestAblation:
    def test_variants_present(self):
        result = ext_ablation(pair_count=2)
        variants = [row[0] for row in result.rows]
        assert "EMS (both + C, c=0.8)" in variants
        assert "no C factor" in variants
        assert len(variants) == 6


class TestEstimationError:
    def test_error_decays_with_budget(self):
        result = ext_estimation_error(budgets=(0, 10), pair_count=2)
        max_errors = result.column("max |error|")
        assert max_errors[0] >= max_errors[-1]

    def test_large_budget_error_zero(self):
        result = ext_estimation_error(budgets=(50,), pair_count=1)
        assert result.rows[0][1] < 1e-6
