"""Tests for the alpha-miner discovery algorithm."""

import random

import pytest

from repro.discovery.alpha import alpha_miner
from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.petri.playout import play_out_net


@pytest.fixture()
def classic_log() -> EventLog:
    """The textbook alpha example: a, then b || c, then d; or a, e, d."""
    return EventLog(
        [["a", "b", "c", "d"]] * 4
        + [["a", "c", "b", "d"]] * 4
        + [["a", "e", "d"]] * 4,
        name="classic",
    )


class TestMining:
    def test_produces_workflow_net(self, classic_log):
        net = alpha_miner(classic_log)
        assert net.is_workflow_net()

    def test_transitions_cover_activities(self, classic_log):
        net = alpha_miner(classic_log)
        labels = {t.label for t in net.transitions.values()}
        assert labels == {"a", "b", "c", "d", "e"}

    def test_rediscovers_exact_language(self, classic_log):
        net = alpha_miner(classic_log)
        variants = {
            trace.activities for trace in play_out_net(net, 300, random.Random(1))
        }
        assert variants == {
            ("a", "b", "c", "d"),
            ("a", "c", "b", "d"),
            ("a", "e", "d"),
        }

    def test_simple_sequence(self):
        net = alpha_miner(EventLog([["x", "y", "z"]] * 5))
        variants = {
            trace.activities for trace in play_out_net(net, 50, random.Random(0))
        }
        assert variants == {("x", "y", "z")}

    def test_pure_choice(self):
        net = alpha_miner(EventLog([["s", "a", "t"]] * 3 + [["s", "b", "t"]] * 3))
        variants = {
            trace.activities for trace in play_out_net(net, 100, random.Random(0))
        }
        assert variants == {("s", "a", "t"), ("s", "b", "t")}

    def test_empty_log_rejected(self):
        with pytest.raises(SynthesisError):
            alpha_miner(EventLog())

    def test_roundtrip_with_synthesized_model(self):
        """model -> log -> alpha -> net whose language contains the log."""
        from repro.synthesis.generator import ACYCLIC_PROFILE, random_process_tree
        from repro.synthesis.playout import play_out

        rng = random.Random(11)
        tree = random_process_tree([f"a{i}" for i in range(6)], rng, ACYCLIC_PROFILE)
        log = play_out(tree, 150, rng, with_timestamps=False)
        net = alpha_miner(log)
        # The mined net must at least be a structurally sane workflow net
        # covering every observed activity.
        assert net.is_workflow_net()
        labels = {t.label for t in net.transitions.values()}
        assert labels == log.activities()
