"""Tests for the heuristics miner."""

import pytest

from repro.discovery.heuristic import heuristic_miner
from repro.exceptions import SynthesisError
from repro.logs.log import EventLog


class TestDependencyMeasure:
    def test_clean_sequence_mined(self):
        log = EventLog([["a", "b", "c"]] * 20)
        graph = heuristic_miner(log, dependency_threshold=0.9)
        assert ("a", "b") in graph.edges
        assert ("b", "c") in graph.edges
        assert ("a", "c") not in graph.edges

    def test_measure_value(self):
        # 20 a>b, 0 b>a: dep = 20/21.
        log = EventLog([["a", "b"]] * 20)
        graph = heuristic_miner(log, dependency_threshold=0.5)
        assert graph.edges[("a", "b")] == pytest.approx(20 / 21)

    def test_concurrency_filtered(self):
        # a>b and b>a in equal measure: dep ~ 0, edge dropped.
        log = EventLog([["a", "b"]] * 10 + [["b", "a"]] * 10)
        graph = heuristic_miner(log, dependency_threshold=0.5)
        assert ("a", "b") not in graph.edges
        assert ("b", "a") not in graph.edges

    def test_noise_robustness(self):
        # One noisy b>a among 30 a>b keeps the causal edge.
        log = EventLog([["a", "b"]] * 30 + [["b", "a"]])
        graph = heuristic_miner(log, dependency_threshold=0.8)
        assert ("a", "b") in graph.edges
        assert ("b", "a") not in graph.edges

    def test_threshold_validated(self):
        with pytest.raises(SynthesisError):
            heuristic_miner(EventLog([["a"]]), dependency_threshold=2.0)

    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            heuristic_miner(EventLog())


class TestLoops:
    def test_one_loop_detected(self):
        log = EventLog([["a", "a", "a", "b"]] * 10)
        graph = heuristic_miner(log, loop_threshold=0.5)
        assert "a" in graph.loops
        assert graph.loops["a"] > 0.9

    def test_loop_threshold_filters(self):
        log = EventLog([["a", "a", "b"]] + [["a", "b"]] * 20)
        graph = heuristic_miner(log, loop_threshold=0.9)
        assert "a" not in graph.loops  # one self-follow: measure 0.5


class TestGraphViews:
    def test_start_end_activities(self):
        log = EventLog([["s", "m", "e"]] * 5 + [["s", "e"]] * 5)
        graph = heuristic_miner(log)
        assert graph.start_activities == frozenset({"s"})
        assert graph.end_activities == frozenset({"e"})

    def test_successors_predecessors(self):
        log = EventLog([["a", "b"], ["a", "c"]] * 10)
        graph = heuristic_miner(log, dependency_threshold=0.5)
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("b") == ["a"]

    def test_to_dot(self):
        # 20 repetitions push dep(a, b) = 20/21 above the 0.9 default.
        log = EventLog([["a", "b"]] * 20)
        dot = heuristic_miner(log).to_dot()
        assert '"a" -> "b"' in dot
        assert dot.startswith("digraph")
