"""Tests for the inductive miner."""

import random

import pytest

from repro.discovery.inductive import inductive_miner
from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.synthesis.process_tree import Choice, Leaf, Loop, Parallel, Sequence


def language(tree, samples: int = 800) -> set[tuple[str, ...]]:
    return {tuple(tree.sample(random.Random(seed))) for seed in range(samples)}


def variants(log: EventLog) -> set[tuple[str, ...]]:
    return {trace.activities for trace in log}


class TestBaseCases:
    def test_single_activity(self):
        tree = inductive_miner(EventLog([["a"]] * 5))
        assert isinstance(tree, Leaf)
        assert tree.activity == "a"

    def test_repeating_single_activity_becomes_loop(self):
        tree = inductive_miner(EventLog([["a", "a"], ["a"]]))
        assert isinstance(tree, Loop)
        assert language(tree) >= {("a",), ("a", "a")}

    def test_empty_log_rejected(self):
        with pytest.raises(SynthesisError):
            inductive_miner(EventLog())


class TestCuts:
    def test_sequence_cut(self):
        tree = inductive_miner(EventLog([["a", "b", "c"]] * 10))
        assert isinstance(tree, Sequence)
        assert language(tree) == {("a", "b", "c")}

    def test_xor_cut(self):
        tree = inductive_miner(EventLog([["a"], ["b"]] * 5))
        assert isinstance(tree, Choice)
        assert language(tree) == {("a",), ("b",)}

    def test_parallel_cut(self):
        tree = inductive_miner(EventLog([["a", "b"], ["b", "a"]] * 5))
        assert isinstance(tree, Parallel)
        assert language(tree) == {("a", "b"), ("b", "a")}

    def test_nested_choice_inside_sequence(self):
        log = EventLog([["s", "a", "t"]] * 5 + [["s", "b", "t"]] * 5)
        tree = inductive_miner(log)
        assert tree.describe() == "->(s, X(a, b), t)"

    def test_loop_cut(self):
        log = EventLog([["a"], ["a", "r", "a"], ["a", "r", "a", "r", "a"]] * 3)
        tree = inductive_miner(log)
        assert isinstance(tree, Loop)
        assert variants(log) <= language(tree)

    def test_rediscovers_figure1_structure(self, fig1_logs):
        tree = inductive_miner(fig1_logs[0])
        assert tree.describe() == "->(X(A, B), C, D, +(E, F))"


class TestGuarantees:
    def test_log_language_containment_on_random_models(self):
        """Fitness guarantee: every observed trace is replayable."""
        from repro.synthesis.generator import ACYCLIC_PROFILE, random_process_tree
        from repro.synthesis.playout import play_out

        for seed in range(6):
            rng = random.Random(seed)
            tree = random_process_tree(
                [f"a{i}" for i in range(6)], rng, ACYCLIC_PROFILE
            )
            log = play_out(tree, 200, rng, with_timestamps=False)
            mined = inductive_miner(log)
            assert variants(log) <= language(mined, samples=1500), mined.describe()

    def test_flower_fallback_on_unstructured_log(self):
        # No cut applies: the flower model must still replay the log.
        log = EventLog([["a", "b", "c"], ["c", "a"], ["b", "c", "a", "b"]])
        tree = inductive_miner(log)
        assert variants(log) <= language(tree, samples=4000)

    def test_mined_tree_converts_to_workflow_net(self):
        from repro.petri.from_tree import tree_to_petri

        tree = inductive_miner(EventLog([["a", "b"], ["b", "a"]] * 4))
        assert tree_to_petri(tree).is_workflow_net()

    def test_conformance_of_mined_model(self):
        from repro.conformance import replay_log
        from repro.petri.from_tree import tree_to_petri

        log = EventLog([["s", "a", "t"]] * 5 + [["s", "b", "t"]] * 5)
        net = tree_to_petri(inductive_miner(log))
        assert replay_log(net, log).fitness == pytest.approx(1.0)
