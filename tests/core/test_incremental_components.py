"""Unit tests for the incremental-engine building blocks.

Covers the :class:`WarmStart` fixpoint seeding, the LRU-bounded
:class:`LabelMatrixCache`, the log-space guard in the Section-3.5
estimation, and the soundness of :func:`estimation_screen_bound`.
"""

import math
import random as random_module

import numpy as np
import pytest

from repro.core.bounds import estimation_screen_bound
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, LabelMatrixCache, WarmStart, edge_agreement
from repro.core.estimation import (
    estimate_matrix,
    estimate_pair,
    estimation_coefficients,
)
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog


def small_logs() -> tuple[EventLog, EventLog]:
    first = EventLog([["a", "b", "c"], ["a", "c", "d"], ["b", "d"]], name="L1")
    second = EventLog([["a", "b", "c"], ["a", "b", "d"], ["c", "d"]], name="L2")
    return first, second


def random_graph(seed: int, alphabet: str = "abcdef") -> DependencyGraph:
    rng = random_module.Random(seed)
    traces = [
        [rng.choice(alphabet) for _ in range(rng.randint(1, 6))]
        for _ in range(rng.randint(2, 8))
    ]
    return DependencyGraph.from_log(EventLog(traces, name=f"g{seed}"))


class TestWarmStart:
    def test_matches_dict_fixed_pairs(self):
        first, second = small_logs()
        g1, g2 = DependencyGraph.from_log(first), DependencyGraph.from_log(second)
        engine = EMSEngine(EMSConfig(alpha=1.0, direction="both"))
        fixed = {("a", "a"): 0.73, ("b", "d"): 0.21}

        cold = engine.similarity(g1, g2, fixed_forward=fixed, fixed_backward=fixed)

        values = np.zeros((len(g1.nodes), len(g2.nodes)))
        dirty = np.ones_like(values, dtype=bool)
        row = {node: i for i, node in enumerate(g1.nodes)}
        col = {node: j for j, node in enumerate(g2.nodes)}
        for (v1, v2), value in fixed.items():
            values[row[v1], col[v2]] = value
            dirty[row[v1], col[v2]] = False
        warm_start = WarmStart(values=values, dirty=dirty)
        warm = engine.similarity(
            g1, g2, fixed_forward=warm_start, fixed_backward=warm_start
        )

        np.testing.assert_array_equal(cold.matrix.values, warm.matrix.values)
        assert cold.pair_updates == warm.pair_updates
        assert cold.iterations == warm.iterations

    def test_pairs_fixed_property(self):
        dirty = np.array([[True, False], [False, False]])
        warm = WarmStart(values=np.zeros((2, 2)), dirty=dirty)
        assert warm.pairs_fixed == 3

    def test_shape_mismatch_rejected(self):
        first, second = small_logs()
        g1, g2 = DependencyGraph.from_log(first), DependencyGraph.from_log(second)
        engine = EMSEngine(EMSConfig(alpha=1.0, direction="forward"))
        bad = WarmStart(values=np.zeros((2, 2)), dirty=np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            engine.similarity(g1, g2, fixed_forward=bad)

    def test_all_dirty_equals_cold_start(self):
        first, second = small_logs()
        g1, g2 = DependencyGraph.from_log(first), DependencyGraph.from_log(second)
        engine = EMSEngine(EMSConfig(alpha=1.0, direction="forward"))
        shape = (len(g1.nodes), len(g2.nodes))
        warm_start = WarmStart(values=np.zeros(shape), dirty=np.ones(shape, dtype=bool))
        cold = engine.similarity(g1, g2)
        warm = engine.similarity(g1, g2, fixed_forward=warm_start)
        np.testing.assert_array_equal(cold.matrix.values, warm.matrix.values)
        assert cold.pair_updates == warm.pair_updates


class TestLabelMatrixCache:
    @staticmethod
    def _counting_label():
        calls = [0]

        def label(first: str, second: str) -> float:
            calls[0] += 1
            return 0.5

        return label, calls

    def _fill(self, cache: LabelMatrixCache, count: int) -> None:
        label, _ = self._counting_label()
        for k in range(count):
            cache.matrix((f"a{k}", f"b{k}"), (f"x{k}", f"y{k}"), label)

    def test_unbounded_by_default(self):
        cache = LabelMatrixCache()
        self._fill(cache, 20)
        assert len(cache) == 20

    def test_cap_respected(self):
        cache = LabelMatrixCache(max_entries=4)
        self._fill(cache, 20)
        assert len(cache) <= 4

    def test_lru_eviction_order(self):
        cache = LabelMatrixCache(max_entries=2)
        label, calls = self._counting_label()
        cache.matrix(("a",), ("x",), label)
        cache.matrix(("b",), ("x",), label)
        first_calls = calls[0]
        cache.matrix(("a",), ("x",), label)  # touch: ("a",) is now most recent
        assert calls[0] == first_calls  # served from cache
        cache.matrix(("c",), ("y",), label)  # evicts ("b",), not ("a",)
        cache.matrix(("a",), ("x",), label)  # still cached (cell cache aside)
        assert len(cache) == 2
        before = calls[0]
        cache.matrix(("b",), ("z",), label)  # was evicted: recomputed
        assert calls[0] == before + 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            LabelMatrixCache(max_entries=0)
        with pytest.raises(ValueError):
            LabelMatrixCache(max_entries=-3)

    def test_dtype_keys_are_distinct(self):
        """A float32 run must never reuse (or upcast) a float64 matrix."""
        label, _ = self._counting_label()
        cache = LabelMatrixCache()
        wide = cache.matrix(("a", "b"), ("x",), label)
        narrow = cache.matrix(("a", "b"), ("x",), label, dtype=np.float32)
        assert wide.dtype == np.float64
        assert narrow.dtype == np.float32
        assert wide is not narrow
        assert len(cache) == 2  # one entry per (rows, cols, dtype)
        np.testing.assert_allclose(narrow, wide.astype(np.float32))
        # Repeat requests hit their own dtype's entry.
        assert cache.matrix(("a", "b"), ("x",), label) is wide
        assert cache.matrix(("a", "b"), ("x",), label, dtype=np.float32) is narrow

    def test_dtype_miss_reuses_scalar_cells(self):
        """The cell cache is dtype-free: a narrowed rebuild costs no calls."""
        label, calls = self._counting_label()
        cache = LabelMatrixCache()
        cache.matrix(("a",), ("x", "y"), label)
        after_wide = calls[0]
        cache.matrix(("a",), ("x", "y"), label, dtype=np.float32)
        assert calls[0] == after_wide


class TestEstimationOverflowGuard:
    def test_huge_level_matrix_no_underflow(self):
        q = np.array([[0.5, 0.3], [0.0, 0.79]])
        a = np.array([[0.1, 0.2], [0.3, 0.05]])
        exact = np.full((2, 2), 0.4)
        levels = np.full((2, 2), 10_000.0)
        with np.errstate(under="raise", over="raise"):
            result = estimate_matrix(exact, q, a, levels, exact_iterations=2)
        # q^(h - I) is indistinguishable from 0 at h = 10_000: the estimate
        # collapses to the geometric limit a / (1 - q), clipped at 1.
        expected = np.minimum(1.0, a / (1.0 - q))
        np.testing.assert_allclose(result, expected, rtol=0, atol=1e-300)

    def test_huge_level_scalar_no_underflow(self):
        with np.errstate(under="raise"):
            value = estimate_pair(0.4, q=0.5, a=0.1, level=10_000, exact_iterations=0)
        assert value == pytest.approx(0.1 / 0.5)

    def test_moderate_level_unchanged_by_guard(self):
        # Well inside the representable range the log-space path must agree
        # with the direct power.
        q = np.array([[0.5]])
        a = np.array([[0.1]])
        exact = np.array([[0.3]])
        result = estimate_matrix(exact, q, a, np.array([[20.0]]), exact_iterations=4)
        q_pow = 0.5 ** 16
        assert result[0, 0] == pytest.approx(q_pow * 0.3 + 0.1 * (1 - q_pow) / 0.5)


class TestScreenBoundSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_bound_dominates_converged_similarity(self, seed):
        g1 = random_graph(seed)
        g2 = random_graph(seed + 1000, alphabet="abcdeg")
        config = EMSConfig(alpha=1.0, direction="forward")
        engine = EMSEngine(config)
        result = engine.similarity(g1, g2)

        in_first = np.array([len(g1.predecessors(v)) for v in g1.nodes])
        in_second = np.array([len(g2.predecessors(v)) for v in g2.nodes])
        f1 = np.array([g1.frequency(v) for v in g1.nodes])
        f2 = np.array([g2.frequency(v) for v in g2.nodes])
        agreement = edge_agreement(f1, f2, config.c)
        labels = np.zeros((len(g1.nodes), len(g2.nodes)))
        q, a = estimation_coefficients(
            in_first, in_second, agreement, labels, config.alpha, config.c
        )
        bound = estimation_screen_bound(q, a)
        assert (bound + 1e-9 >= result.matrix.values).all()

    def test_refinement_tightens_without_undercutting(self):
        q = np.array([[0.4, 0.2], [0.3, 0.1]])
        a = np.array([[0.1, 0.05], [0.2, 0.3]])
        loose = np.minimum(1.0, q + a)  # one round from u = 1
        tight = estimation_screen_bound(q, a)
        assert (tight <= loose + 1e-12).all()
        # The analytic fixpoint of u = max(q u + a) still lower-bounds it.
        u = 1.0
        for _ in range(500):
            u = float(np.minimum(1.0, q * u + a).max())
        assert tight.max() >= u - 1e-6

    def test_empty_matrix(self):
        empty = np.zeros((0, 0))
        assert estimation_screen_bound(empty, empty).shape == (0, 0)
