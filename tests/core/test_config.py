"""Tests for EMSConfig validation."""

import pytest

from repro.core.config import EMSConfig


class TestValidation:
    def test_defaults_valid(self):
        config = EMSConfig()
        assert config.alpha == 1.0
        assert config.c == 0.8
        assert config.direction == "both"

    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_alpha_range(self, alpha):
        with pytest.raises(ValueError):
            EMSConfig(alpha=alpha)

    @pytest.mark.parametrize("c", [0.0, 1.0, -0.5])
    def test_c_range(self, c):
        with pytest.raises(ValueError):
            EMSConfig(c=c)

    def test_epsilon_positive(self):
        with pytest.raises(ValueError):
            EMSConfig(epsilon=0.0)

    def test_max_iterations_positive(self):
        with pytest.raises(ValueError):
            EMSConfig(max_iterations=0)

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            EMSConfig(direction="sideways")  # type: ignore[arg-type]

    def test_estimation_iterations_non_negative(self):
        with pytest.raises(ValueError):
            EMSConfig(estimation_iterations=-1)
        assert EMSConfig(estimation_iterations=0).estimation_iterations == 0

    def test_kernel_validated(self):
        with pytest.raises(ValueError):
            EMSConfig(kernel="gpu")  # type: ignore[arg-type]
        assert EMSConfig(kernel="sparse").kernel == "sparse"

    def test_dtype_validated(self):
        import numpy as np

        with pytest.raises(ValueError):
            EMSConfig(dtype="float16")  # type: ignore[arg-type]
        assert EMSConfig().np_dtype == np.dtype(np.float64)
        assert EMSConfig(dtype="float32").np_dtype == np.dtype(np.float32)


class TestHelpers:
    def test_with_returns_modified_copy(self):
        base = EMSConfig()
        changed = base.with_(alpha=0.5)
        assert changed.alpha == 0.5
        assert base.alpha == 1.0

    def test_with_validates(self):
        with pytest.raises(ValueError):
            EMSConfig().with_(c=2.0)

    def test_decay(self):
        assert EMSConfig(alpha=0.5, c=0.8).decay == pytest.approx(0.4)
