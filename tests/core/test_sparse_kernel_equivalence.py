"""Differential tests: the sparse EMS kernel against the other two.

The sparse kernel (``EMSConfig(kernel="sparse")``) trades the vectorized
kernel's dense ``(m, A, B)`` scratch tensors for streamed CSR
gather–scatter chunks, but it must remain an observationally identical
implementation of formula (1): same similarities (to within 1e-12 at
float64), same ``iterations``, same ``pair_updates`` — across pruning
on/off (including the Proposition-2 freeze order), edge weights, label
blending, fixed (Uc) pairs, estimation, the Bd abort and mid-iteration
budget exhaustion, where even the partially-updated best-so-far state
must match pair for pair.  The suite also pins:

* **streaming mode** — with the cache limit forced to zero the kernel
  regenerates gather indices per chunk from the node-level CSR tables;
  results must not change;
* **float32** — a narrowed run stays within 1e-5 of the float64 answer
  and preserves the per-row best match up to ties;
* **warm starts** — the incremental composite search produces the same
  trajectory under the sparse kernel as under the vectorized one.
"""

import numpy as np
import pytest

import repro.core.ems as ems_module
from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.runtime.budget import MatchBudget
from repro.runtime.degrade import DegradationPolicy
from repro.similarity.labels import QGramCosineSimilarity
from repro.synthesis.corpus import build_scalability_pair

ATOL = 1e-12
FLOAT32_ATOL = 1e-5


def graphs_for(size: int, seed: int) -> tuple[DependencyGraph, DependencyGraph]:
    pair = build_scalability_pair(size, seed=seed, traces_per_log=30)
    return (
        DependencyGraph.from_log(pair.log_first),
        DependencyGraph.from_log(pair.log_second),
    )


@pytest.fixture(scope="module")
def graphs_12() -> tuple[DependencyGraph, DependencyGraph]:
    return graphs_for(12, seed=11)


@pytest.fixture()
def streaming_mode(monkeypatch):
    """Force the sparse kernel off its cached path and onto tiny chunks."""
    monkeypatch.setattr(ems_module, "_SPARSE_CACHE_LIMIT", 0)
    monkeypatch.setattr(ems_module, "_SPARSE_CHUNK_TARGET", 7)


def assert_equivalent(result_sparse, result_other, atol=ATOL) -> None:
    assert result_sparse.iterations == result_other.iterations
    assert result_sparse.pair_updates == result_other.pair_updates
    assert result_sparse.converged == result_other.converged
    assert result_sparse.estimated == result_other.estimated
    np.testing.assert_allclose(
        result_sparse.matrix.values, result_other.matrix.values, rtol=0, atol=atol
    )
    assert set(result_sparse.directional) == set(result_other.directional)
    for name, matrix in result_sparse.directional.items():
        np.testing.assert_allclose(
            matrix.values, result_other.directional[name].values, rtol=0, atol=atol
        )


def run_kernels(graphs, config_kwargs, kernels=("sparse", "reference"),
                label=None, **similarity_kwargs):
    results = []
    for kernel in kernels:
        engine = EMSEngine(EMSConfig(kernel=kernel, **config_kwargs), label)
        results.append(engine.similarity(*graphs, **similarity_kwargs))
    return results


class TestExactEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("use_pruning", [True, False])
    def test_random_graphs(self, seed, use_pruning):
        graphs = graphs_for(8 + 2 * seed, seed=seed)
        assert_equivalent(*run_kernels(graphs, {"use_pruning": use_pruning}))

    @pytest.mark.parametrize("use_edge_weights", [True, False])
    def test_edge_weight_ablation(self, graphs_12, use_edge_weights):
        assert_equivalent(
            *run_kernels(graphs_12, {"use_edge_weights": use_edge_weights})
        )

    @pytest.mark.parametrize("direction", ["forward", "backward", "both"])
    def test_directions(self, graphs_12, direction):
        assert_equivalent(*run_kernels(graphs_12, {"direction": direction}))

    def test_label_blending(self, graphs_12):
        assert_equivalent(
            *run_kernels(graphs_12, {"alpha": 0.5}, label=QGramCosineSimilarity())
        )

    def test_fixed_pairs_seeded(self, graphs_12):
        first, second = graphs_12
        fixed_forward = {
            (first.nodes[0], second.nodes[0]): 0.9,
            (first.nodes[1], second.nodes[2]): 0.25,
        }
        fixed_backward = {(first.nodes[2], second.nodes[1]): 0.5}
        assert_equivalent(
            *run_kernels(
                graphs_12, {},
                fixed_forward=fixed_forward, fixed_backward=fixed_backward,
            )
        )

    @pytest.mark.parametrize("exact_iterations", [0, 2])
    def test_estimation(self, graphs_12, exact_iterations):
        assert_equivalent(
            *run_kernels(graphs_12, {"estimation_iterations": exact_iterations})
        )

    def test_matches_vectorized_too(self, graphs_12):
        assert_equivalent(
            *run_kernels(graphs_12, {}, kernels=("sparse", "vectorized"))
        )


class TestStreamingMode:
    """The cached and streaming sparse paths must not disagree."""

    @pytest.mark.parametrize("seed", range(3))
    def test_streaming_matches_reference(self, streaming_mode, seed):
        graphs = graphs_for(8 + 2 * seed, seed=seed)
        assert_equivalent(*run_kernels(graphs, {}))

    def test_streaming_matches_cached(self, graphs_12, monkeypatch):
        cached = run_kernels(graphs_12, {}, kernels=("sparse",))[0]
        monkeypatch.setattr(ems_module, "_SPARSE_CACHE_LIMIT", 0)
        monkeypatch.setattr(ems_module, "_SPARSE_CHUNK_TARGET", 7)
        streamed = run_kernels(graphs_12, {}, kernels=("sparse",))[0]
        assert_equivalent(streamed, cached)

    def test_streaming_under_pruning_and_labels(self, streaming_mode, graphs_12):
        assert_equivalent(
            *run_kernels(
                graphs_12, {"alpha": 0.5, "use_pruning": True},
                label=QGramCosineSimilarity(),
            )
        )


class TestAbortEquivalence:
    @pytest.mark.parametrize("abort_below", [0.0, 0.4, 0.99])
    def test_similarity_with_abort(self, graphs_12, abort_below):
        results = []
        for kernel in ("sparse", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            results.append(engine.similarity_with_abort(*graphs_12, abort_below))
        sparse, ref = results
        if ref is None:
            assert sparse is None
        else:
            assert_equivalent(sparse, ref)


class TestBudgetEquivalence:
    """Mid-iteration exhaustion must leave the identical best-so-far state."""

    #: Caps chosen to trip at the start, inside the first iteration, and
    #: deep inside later iterations of the 12-event fixpoint.
    CAPS = [0, 1, 53, 500, 1777]

    @pytest.mark.parametrize("cap", CAPS)
    @pytest.mark.parametrize(
        "policy", [DegradationPolicy.full(), DegradationPolicy.partial_only()],
        ids=["estimated", "partial"],
    )
    def test_degraded_states_match(self, graphs_12, cap, policy):
        results = []
        spent = []
        for kernel in ("sparse", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            meter = MatchBudget(max_pair_updates=cap).start()
            result, stage, reason = engine.similarity_resilient(
                *graphs_12, meter, policy
            )
            results.append((result, stage, reason))
            spent.append(meter.pair_updates_spent)
        (sparse, stage_sparse, reason_sparse), (ref, stage_ref, reason_ref) = results
        assert stage_sparse == stage_ref
        assert reason_sparse == reason_ref
        assert spent[0] == spent[1]
        assert_equivalent(sparse, ref)

    def test_streaming_budget_cut_matches(self, streaming_mode, graphs_12):
        results = []
        for kernel in ("sparse", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            meter = MatchBudget(max_pair_updates=53).start()
            result, _, _ = engine.similarity_resilient(
                *graphs_12, meter, DegradationPolicy.partial_only()
            )
            results.append(result)
        assert_equivalent(*results)

    def test_exhaustion_raises_identically_without_ladder(self, graphs_12):
        for kernel in ("sparse", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            meter = MatchBudget(max_pair_updates=10).start()
            with pytest.raises(Exception) as excinfo:
                engine.similarity(*graphs_12, meter=meter)
            assert excinfo.value.reason == "pair-updates"
            assert meter.pair_updates_spent == 11

    def test_uncapped_budget_charges_identically(self, graphs_12):
        meters = []
        for kernel in ("sparse", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            meter = MatchBudget(max_pair_updates=10**9).start()
            engine.similarity(*graphs_12, meter=meter)
            meters.append(meter)
        assert meters[0].pair_updates_spent == meters[1].pair_updates_spent


class TestFloat32:
    """dtype="float32" is a 1e-5 approximation, not a different answer."""

    @pytest.mark.parametrize("kernel", ["sparse", "vectorized", "reference"])
    def test_close_to_float64(self, graphs_12, kernel):
        wide = EMSEngine(EMSConfig(kernel=kernel)).similarity(*graphs_12)
        narrow = EMSEngine(
            EMSConfig(kernel=kernel, dtype="float32")
        ).similarity(*graphs_12)
        assert narrow.pair_updates == wide.pair_updates or narrow.converged
        np.testing.assert_allclose(
            narrow.matrix.values, wide.matrix.values, rtol=0, atol=FLOAT32_ATOL
        )

    def test_kernels_agree_at_float32(self, graphs_12):
        results = [
            EMSEngine(EMSConfig(kernel=kernel, dtype="float32")).similarity(
                *graphs_12
            )
            for kernel in ("sparse", "vectorized")
        ]
        assert results[0].pair_updates == results[1].pair_updates
        np.testing.assert_allclose(
            results[0].matrix.values, results[1].matrix.values,
            rtol=0, atol=FLOAT32_ATOL,
        )

    def test_rank_preserving_per_row(self, graphs_12):
        """float32's per-row best match is a float64 optimum up to ties."""
        wide = EMSEngine(EMSConfig(kernel="sparse")).similarity(*graphs_12)
        narrow = EMSEngine(
            EMSConfig(kernel="sparse", dtype="float32")
        ).similarity(*graphs_12)
        values64 = wide.matrix.values
        choice32 = np.argmax(narrow.matrix.values, axis=1)
        chosen = values64[np.arange(values64.shape[0]), choice32]
        # The row maximum at float64 may differ only by a near-tie the
        # narrower arithmetic was free to break the other way.
        assert np.all(values64.max(axis=1) - chosen <= 1e-6)


class TestIncrementalCompositeParity:
    """Warm-started fixpoints must behave identically under the sparse kernel."""

    KNOBS = dict(delta=0.005, min_confidence=0.9, max_run_length=2)

    def test_sparse_matches_vectorized_incremental(self, fig1_logs):
        results = []
        for kernel in ("vectorized", "sparse"):
            config = EMSConfig(kernel=kernel, incremental=True, screening=True)
            results.append(CompositeMatcher(config, **self.KNOBS).match(*fig1_logs))
        vectorized, sparse = results
        assert sparse.accepted_first == vectorized.accepted_first
        assert sparse.accepted_second == vectorized.accepted_second
        assert sparse.stats.pair_updates == vectorized.stats.pair_updates
        np.testing.assert_allclose(
            sparse.matrix.values, vectorized.matrix.values, rtol=0, atol=ATOL
        )

    def test_sparse_warm_equals_cold(self, fig1_logs):
        warm = CompositeMatcher(
            EMSConfig(kernel="sparse", incremental=True, screening=True),
            **self.KNOBS,
        ).match(*fig1_logs)
        cold = CompositeMatcher(
            EMSConfig(kernel="sparse", incremental=False, screening=False),
            **self.KNOBS,
        ).match(*fig1_logs)
        assert warm.accepted_first == cold.accepted_first
        assert warm.accepted_second == cold.accepted_second
        assert warm.stats.pair_updates == cold.stats.pair_updates
        np.testing.assert_allclose(
            warm.matrix.values, cold.matrix.values, rtol=0, atol=ATOL
        )
