"""Tests for the exhaustive optimal composite matching (Problem 1)."""

import pytest

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.core.optimal import non_overlapping_subsets, optimal_composite_matching
from repro.exceptions import MatchingError


class TestNonOverlappingSubsets:
    def test_includes_empty_packing(self):
        assert () in non_overlapping_subsets([("a", "b")])

    def test_overlapping_pairs_excluded(self):
        packings = non_overlapping_subsets([("a", "b"), ("b", "c")])
        assert (("a", "b"),) in packings
        assert (("b", "c"),) in packings
        assert (("a", "b"), ("b", "c")) not in packings

    def test_disjoint_pairs_combine(self):
        packings = non_overlapping_subsets([("a", "b"), ("c", "d")])
        assert (("a", "b"), ("c", "d")) in packings

    def test_count_for_disjoint_candidates(self):
        # 3 disjoint candidates -> 2^3 packings.
        candidates = [("a", "b"), ("c", "d"), ("e", "f")]
        assert len(non_overlapping_subsets(candidates)) == 8


class TestOptimalSearch:
    def test_candidate_guard_refuses_before_enumerating(self, fig1_logs):
        candidates = [(str(i), str(i + 100)) for i in range(50)]
        with pytest.raises(MatchingError):
            optimal_composite_matching(*fig1_logs, candidates, candidates)

    def test_evaluation_budget_guard(self, fig1_logs):
        # 12 pairwise-disjoint candidates -> 2^12 packings per side, well
        # past MAX_EVALUATIONS while staying enumerable.
        candidates = [(f"l{i}", f"r{i}") for i in range(12)]
        with pytest.raises(MatchingError):
            optimal_composite_matching(*fig1_logs, candidates, candidates)

    def test_figure1_optimum_is_cd(self, fig1_logs):
        result = optimal_composite_matching(
            *fig1_logs,
            candidates_first=[("C", "D"), ("E", "F")],
            candidates_second=[],
            config=EMSConfig(),
        )
        assert result.runs_first == (("C", "D"),)
        assert result.average == pytest.approx(0.509, abs=2e-3)

    def test_greedy_matches_optimum_on_figure1(self, fig1_logs):
        """The greedy heuristic attains the optimal objective here."""
        optimal = optimal_composite_matching(
            *fig1_logs,
            candidates_first=[("C", "D"), ("E", "F")],
            candidates_second=[],
            config=EMSConfig(),
        )
        greedy = CompositeMatcher(
            EMSConfig(), delta=0.005, min_confidence=0.9, max_run_length=2
        ).match(*fig1_logs)
        assert greedy.average == pytest.approx(optimal.average, abs=1e-4)

    def test_empty_candidates_returns_baseline(self, fig1_logs):
        result = optimal_composite_matching(*fig1_logs, [], [], config=EMSConfig())
        assert result.runs_first == ()
        assert result.runs_second == ()
        assert result.evaluations == 1
