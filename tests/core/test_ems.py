"""Tests for the EMS engine, pinned to the paper's worked examples.

The Figure 1 fixture reproduces the frequencies of Figure 2, so the
paper's Examples 4, 6 and 7 provide exact expected values.
"""

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, edge_agreement, iteration_trace
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.similarity.labels import ExactSimilarity

FORWARD = EMSConfig(alpha=1.0, c=0.8, direction="forward")


class TestEdgeAgreement:
    def test_equal_weights_give_c(self):
        result = edge_agreement(np.array([0.4]), np.array([0.4]), 0.8)
        assert result[0, 0] == pytest.approx(0.8)

    def test_example4_value(self):
        # C(v1X, A, v2X, 1) with f = 0.4 vs 1.0 -> 0.8 * (1 - 0.6/1.4).
        result = edge_agreement(np.array([0.4]), np.array([1.0]), 0.8)
        assert result[0, 0] == pytest.approx(0.45714, abs=1e-4)

    def test_outer_shape(self):
        result = edge_agreement(np.array([0.1, 0.2]), np.array([0.3, 0.4, 0.5]), 0.8)
        assert result.shape == (2, 3)


class TestPaperExample4:
    def test_first_iteration(self, fig1_graphs):
        snapshot = iteration_trace(*fig1_graphs, FORWARD, iterations=1)[0]
        assert snapshot.get("A", "1") == pytest.approx(0.457, abs=1e-3)
        assert snapshot.get("A", "2") == pytest.approx(0.6, abs=1e-3)

    def test_dislocated_pair_wins(self, fig1_graphs):
        """The core claim: A matches its dislocated counterpart 2, not 1."""
        result = EMSEngine(FORWARD).similarity(*fig1_graphs)
        assert result.matrix.get("A", "2") > result.matrix.get("A", "1")

    def test_exact_c4_value(self, fig1_graphs):
        # Example 6: the exact value of S(C, 4) is 0.587.
        result = EMSEngine(FORWARD).similarity(*fig1_graphs)
        assert result.matrix.get("C", "4") == pytest.approx(0.587, abs=1e-3)


class TestPaperExample7:
    def test_average_similarity(self, fig1_graphs):
        # avg(S) = 0.502 with the combined-direction similarity.
        result = EMSEngine(EMSConfig()).similarity(*fig1_graphs)
        assert result.matrix.average() == pytest.approx(0.502, abs=2e-3)


class TestConvergence:
    def test_monotone_nondecreasing_iterations(self, fig1_graphs):
        snapshots = iteration_trace(*fig1_graphs, FORWARD, iterations=6)
        for earlier, later in zip(snapshots, snapshots[1:]):
            for row, col, value in later.pairs():
                assert value >= earlier.get(row, col) - 1e-12

    def test_values_bounded(self, fig1_graphs):
        result = EMSEngine(EMSConfig()).similarity(*fig1_graphs)
        values = result.matrix.values
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_converged_flag(self, fig1_graphs):
        result = EMSEngine(EMSConfig()).similarity(*fig1_graphs)
        assert result.converged

    def test_pruned_equals_unpruned(self, fig1_graphs):
        """Proposition 2: skipping converged pairs changes nothing."""
        pruned = EMSEngine(EMSConfig(use_pruning=True)).similarity(*fig1_graphs)
        unpruned = EMSEngine(EMSConfig(use_pruning=False)).similarity(*fig1_graphs)
        np.testing.assert_allclose(
            pruned.matrix.values, unpruned.matrix.values, atol=1e-3
        )

    def test_pruning_reduces_updates(self, fig1_graphs):
        pruned = EMSEngine(EMSConfig(use_pruning=True)).similarity(*fig1_graphs)
        unpruned = EMSEngine(EMSConfig(use_pruning=False)).similarity(*fig1_graphs)
        assert pruned.pair_updates < unpruned.pair_updates

    def test_unique_fixed_point_from_extra_iterations(self, fig1_graphs):
        """Theorem 1 uniqueness: tighter epsilon converges to the same limit."""
        loose = EMSEngine(EMSConfig(epsilon=1e-3)).similarity(*fig1_graphs)
        tight = EMSEngine(EMSConfig(epsilon=1e-10, max_iterations=500)).similarity(
            *fig1_graphs
        )
        np.testing.assert_allclose(
            loose.matrix.values, tight.matrix.values, atol=5e-3
        )


class TestDirections:
    def test_backward_is_forward_on_reversed(self, fig1_graphs):
        graph_first, graph_second = fig1_graphs
        backward = EMSEngine(EMSConfig(direction="backward")).similarity(
            graph_first, graph_second
        )
        forward_on_reversed = EMSEngine(EMSConfig(direction="forward")).similarity(
            graph_first.reversed(), graph_second.reversed()
        )
        np.testing.assert_allclose(
            backward.matrix.values, forward_on_reversed.matrix.values, atol=1e-9
        )

    def test_both_is_average(self, fig1_graphs):
        forward = EMSEngine(EMSConfig(direction="forward")).similarity(*fig1_graphs)
        backward = EMSEngine(EMSConfig(direction="backward")).similarity(*fig1_graphs)
        both = EMSEngine(EMSConfig(direction="both")).similarity(*fig1_graphs)
        np.testing.assert_allclose(
            both.matrix.values,
            (forward.matrix.values + backward.matrix.values) / 2.0,
            atol=1e-9,
        )

    def test_directional_matrices_exposed(self, fig1_graphs):
        result = EMSEngine(EMSConfig(direction="both")).similarity(*fig1_graphs)
        assert set(result.directional) == {"forward", "backward"}


class TestLabelIntegration:
    def test_alpha_zero_is_pure_label_similarity(self, fig1_graphs):
        engine = EMSEngine(EMSConfig(alpha=0.0), ExactSimilarity())
        log_pair = (
            DependencyGraph.from_log(EventLog([["a", "b"]] * 3)),
            DependencyGraph.from_log(EventLog([["a", "c"]] * 3)),
        )
        result = engine.similarity(*log_pair)
        assert result.matrix.get("a", "a") == pytest.approx(1.0)
        assert result.matrix.get("b", "c") == pytest.approx(0.0)

    def test_label_similarity_raises_matching_pairs(self, fig1_graphs):
        structural = EMSEngine(EMSConfig(alpha=1.0)).similarity(*fig1_graphs)
        # Exact similarity can only help pairs with equal labels; none are
        # equal across the letter/digit vocabularies, so everything drops.
        blended = EMSEngine(EMSConfig(alpha=0.5), ExactSimilarity()).similarity(
            *fig1_graphs
        )
        assert blended.matrix.average() < structural.matrix.average()


class TestFixedPairs:
    def test_fixed_pairs_not_updated(self, fig1_graphs):
        engine = EMSEngine(FORWARD)
        fixed = {("A", "1"): 0.123}
        result = engine.similarity(*fig1_graphs, fixed_forward=fixed)
        assert result.matrix.get("A", "1") == pytest.approx(0.123)

    def test_seeding_converged_values_preserves_result(self, fig1_graphs):
        """Proposition 4 mechanism: seeding true values is a no-op."""
        engine = EMSEngine(FORWARD)
        base = engine.similarity(*fig1_graphs)
        fixed = {
            (row, col): base.matrix.get(row, col)
            for row in base.matrix.rows
            for col in base.matrix.cols
            if row in ("A", "B")
        }
        seeded = engine.similarity(*fig1_graphs, fixed_forward=fixed)
        np.testing.assert_allclose(
            seeded.matrix.values, base.matrix.values, atol=1e-3
        )


class TestAbort:
    def test_abort_on_impossible_target(self, fig1_graphs):
        engine = EMSEngine(EMSConfig())
        assert engine.similarity_with_abort(*fig1_graphs, abort_below=0.999) is None

    def test_no_abort_on_achievable_target(self, fig1_graphs):
        engine = EMSEngine(EMSConfig())
        result = engine.similarity_with_abort(*fig1_graphs, abort_below=0.1)
        assert result is not None
        reference = engine.similarity(*fig1_graphs)
        np.testing.assert_allclose(
            result.matrix.values, reference.matrix.values, atol=1e-9
        )


class TestEdgeWeightAblation:
    def test_constant_decay_loses_the_dislocated_match(self, fig1_graphs):
        """Without the C factor, A prefers the wrong partner 1 — the
        frequency agreement is what pushed A toward its true dislocated
        counterpart 2 in Example 4."""
        config = FORWARD.with_(use_edge_weights=False)
        snapshot = iteration_trace(*fig1_graphs, config, iterations=1)[0]
        assert snapshot.get("A", "1") > snapshot.get("A", "2")
        with_weights = iteration_trace(*fig1_graphs, FORWARD, iterations=1)[0]
        assert with_weights.get("A", "2") > with_weights.get("A", "1")

    def test_with_weights_differs_from_without(self, fig1_graphs):
        with_weights = EMSEngine(EMSConfig()).similarity(*fig1_graphs)
        without = EMSEngine(EMSConfig(use_edge_weights=False)).similarity(*fig1_graphs)
        assert with_weights.matrix.values.tolist() != without.matrix.values.tolist()

    def test_ablated_estimation_consistent(self, fig1_graphs):
        config = EMSConfig(use_edge_weights=False, estimation_iterations=0)
        result = EMSEngine(config).similarity(*fig1_graphs)
        values = result.matrix.values
        assert (values >= 0.0).all()
        assert (values <= 1.0).all()


class TestPairSimilarityHelper:
    def test_matches_matrix(self, fig1_graphs):
        engine = EMSEngine(FORWARD)
        value = engine.pair_similarity(*fig1_graphs, "C", "4")
        assert value == pytest.approx(
            engine.similarity(*fig1_graphs).matrix.get("C", "4")
        )
