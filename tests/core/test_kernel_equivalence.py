"""Differential tests: the vectorized EMS kernel against the reference loop.

The vectorized kernel (``EMSConfig(kernel="vectorized")``) must be an
observationally identical implementation of formula (1): same
similarities (to within 1e-12), same ``iterations``, same
``pair_updates`` — across pruning on/off, edge weights on/off, label
blending, fixed (Uc) pairs, estimation, the Bd abort and mid-iteration
budget exhaustion, where even the partially-updated best-so-far state
must match pair for pair.
"""

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.runtime.budget import MatchBudget
from repro.runtime.degrade import DegradationPolicy
from repro.similarity.labels import QGramCosineSimilarity
from repro.synthesis.corpus import build_scalability_pair

ATOL = 1e-12


def graphs_for(size: int, seed: int) -> tuple[DependencyGraph, DependencyGraph]:
    pair = build_scalability_pair(size, seed=seed, traces_per_log=30)
    return (
        DependencyGraph.from_log(pair.log_first),
        DependencyGraph.from_log(pair.log_second),
    )


@pytest.fixture(scope="module")
def graphs_12() -> tuple[DependencyGraph, DependencyGraph]:
    return graphs_for(12, seed=11)


def assert_equivalent(result_vec, result_ref) -> None:
    assert result_vec.iterations == result_ref.iterations
    assert result_vec.pair_updates == result_ref.pair_updates
    assert result_vec.converged == result_ref.converged
    assert result_vec.estimated == result_ref.estimated
    np.testing.assert_allclose(
        result_vec.matrix.values, result_ref.matrix.values, rtol=0, atol=ATOL
    )
    assert set(result_vec.directional) == set(result_ref.directional)
    for name, matrix in result_vec.directional.items():
        np.testing.assert_allclose(
            matrix.values, result_ref.directional[name].values, rtol=0, atol=ATOL
        )


def run_both(graphs, config_kwargs, label=None, **similarity_kwargs):
    results = []
    for kernel in ("vectorized", "reference"):
        engine = EMSEngine(EMSConfig(kernel=kernel, **config_kwargs), label)
        results.append(engine.similarity(*graphs, **similarity_kwargs))
    return results


class TestExactEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("use_pruning", [True, False])
    def test_random_graphs(self, seed, use_pruning):
        graphs = graphs_for(8 + 2 * seed, seed=seed)
        assert_equivalent(*run_both(graphs, {"use_pruning": use_pruning}))

    @pytest.mark.parametrize("use_edge_weights", [True, False])
    def test_edge_weight_ablation(self, graphs_12, use_edge_weights):
        assert_equivalent(
            *run_both(graphs_12, {"use_edge_weights": use_edge_weights})
        )

    @pytest.mark.parametrize("direction", ["forward", "backward", "both"])
    def test_directions(self, graphs_12, direction):
        assert_equivalent(*run_both(graphs_12, {"direction": direction}))

    def test_label_blending(self, graphs_12):
        assert_equivalent(
            *run_both(graphs_12, {"alpha": 0.5}, label=QGramCosineSimilarity())
        )

    def test_fixed_pairs_seeded(self, graphs_12):
        first, second = graphs_12
        fixed_forward = {
            (first.nodes[0], second.nodes[0]): 0.9,
            (first.nodes[1], second.nodes[2]): 0.25,
        }
        fixed_backward = {(first.nodes[2], second.nodes[1]): 0.5}
        assert_equivalent(
            *run_both(
                graphs_12, {},
                fixed_forward=fixed_forward, fixed_backward=fixed_backward,
            )
        )

    @pytest.mark.parametrize("exact_iterations", [0, 2])
    def test_estimation(self, graphs_12, exact_iterations):
        assert_equivalent(
            *run_both(graphs_12, {"estimation_iterations": exact_iterations})
        )


class TestAbortEquivalence:
    @pytest.mark.parametrize("abort_below", [0.0, 0.4, 0.99])
    def test_similarity_with_abort(self, graphs_12, abort_below):
        results = []
        for kernel in ("vectorized", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            results.append(engine.similarity_with_abort(*graphs_12, abort_below))
        vec, ref = results
        if ref is None:
            assert vec is None
        else:
            assert_equivalent(vec, ref)


class TestBudgetEquivalence:
    """Mid-iteration exhaustion must leave the identical best-so-far state."""

    #: Caps chosen to trip at the start, inside the first iteration, and
    #: deep inside later iterations of the 12-event fixpoint.
    CAPS = [0, 1, 53, 500, 1777]

    @pytest.mark.parametrize("cap", CAPS)
    @pytest.mark.parametrize(
        "policy", [DegradationPolicy.full(), DegradationPolicy.partial_only()],
        ids=["estimated", "partial"],
    )
    def test_degraded_states_match(self, graphs_12, cap, policy):
        results = []
        spent = []
        for kernel in ("vectorized", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            meter = MatchBudget(max_pair_updates=cap).start()
            result, stage, reason = engine.similarity_resilient(
                *graphs_12, meter, policy
            )
            results.append((result, stage, reason))
            spent.append(meter.pair_updates_spent)
        (vec, stage_vec, reason_vec), (ref, stage_ref, reason_ref) = results
        assert stage_vec == stage_ref
        assert reason_vec == reason_ref
        assert spent[0] == spent[1]
        assert_equivalent(vec, ref)

    def test_exhaustion_raises_identically_without_ladder(self, graphs_12):
        for kernel in ("vectorized", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            meter = MatchBudget(max_pair_updates=10).start()
            with pytest.raises(Exception) as excinfo:
                engine.similarity(*graphs_12, meter=meter)
            assert excinfo.value.reason == "pair-updates"
            assert meter.pair_updates_spent == 11

    def test_uncapped_budget_charges_identically(self, graphs_12):
        meters = []
        for kernel in ("vectorized", "reference"):
            engine = EMSEngine(EMSConfig(kernel=kernel))
            meter = MatchBudget(max_pair_updates=10**9).start()
            engine.similarity(*graphs_12, meter=meter)
            meters.append(meter)
        assert meters[0].pair_updates_spent == meters[1].pair_updates_spent
