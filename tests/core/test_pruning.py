"""Tests for the early-convergence schedule (Proposition 2)."""

import math

import numpy as np

from repro.core.pruning import ConvergenceSchedule
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog


def graph_of(*traces: str) -> DependencyGraph:
    return DependencyGraph.from_log(EventLog([list(t) for t in traces]))


class TestPairLevels:
    def test_min_of_node_levels(self):
        schedule = ConvergenceSchedule(graph_of("abc"), graph_of("xy"))
        # rows a,b,c (levels 1,2,3); cols x,y (levels 1,2)
        expected = np.array([[1, 1], [1, 2], [1, 2]])
        np.testing.assert_array_equal(schedule.pair_levels, expected)

    def test_infinite_side_defers_to_other(self):
        schedule = ConvergenceSchedule(graph_of("abab"), graph_of("xy"))
        assert schedule.pair_levels.max() == 2  # min(inf, 2)


class TestActiveMask:
    def test_mask_shrinks_over_iterations(self):
        schedule = ConvergenceSchedule(graph_of("abc"), graph_of("xyz"))
        active_counts = [int(schedule.active_mask(i).sum()) for i in (1, 2, 3, 4)]
        assert active_counts[0] == 9
        assert active_counts == sorted(active_counts, reverse=True)
        assert active_counts[-1] == 0

    def test_figure1_example5(self, fig1_graphs):
        """Example 5: (A, 1) converges after iteration 1, (C, 2) after 2."""
        schedule = ConvergenceSchedule(*fig1_graphs)
        rows = fig1_graphs[0].nodes
        cols = fig1_graphs[1].nodes
        assert schedule.pair_levels[rows.index("A"), cols.index("1")] == 1
        assert schedule.pair_levels[rows.index("C"), cols.index("2")] == 2


class TestGlobalBound:
    def test_acyclic_bound(self):
        schedule = ConvergenceSchedule(graph_of("abc"), graph_of("vwxyz"))
        assert schedule.global_bound == 3
        assert schedule.all_fixed_after(3)
        assert not schedule.all_fixed_after(2)

    def test_cyclic_both_sides_never_fixed(self):
        schedule = ConvergenceSchedule(graph_of("abab"), graph_of("xyxy"))
        assert math.isinf(schedule.global_bound)
        assert not schedule.all_fixed_after(10_000)

    def test_one_cyclic_side_bounded_by_other(self):
        schedule = ConvergenceSchedule(graph_of("abab"), graph_of("xyz"))
        assert schedule.global_bound == 3
