"""The optional compiled fixpoint kernel and its mandatory fallback.

``EMSConfig(kernel="compiled")`` must be usable on every machine: with
numba installed it runs the njit-compiled bucket loop, without it the
kernel transparently falls back to the vectorized implementation (with
one logged warning per process).  Either way the results are pinned to
the reference kernel by the same differential bar as the other kernels —
exact equality for the fallback, 1e-12 against the reference when the
JIT path is live.
"""

import logging

import numpy as np
import pytest

from repro.core import compiled
from repro.core.compiled import HAS_NUMBA, _CompiledRun
from repro.core.config import EMSConfig
from repro.core.ems import _KERNELS, EMSEngine
from repro.similarity.labels import QGramCosineSimilarity

from tests.core.test_kernel_equivalence import (
    assert_equivalent,
    graphs_for,
)


@pytest.fixture(scope="module")
def graphs_10():
    return graphs_for(10, seed=3)


def run_kernel(kernel, graphs, config_kwargs=None, label=None):
    engine = EMSEngine(EMSConfig(kernel=kernel, **(config_kwargs or {})), label)
    return engine.similarity(*graphs)


class TestRegistration:
    def test_config_accepts_compiled(self):
        assert EMSConfig(kernel="compiled").kernel == "compiled"

    def test_registered_lazily(self, graphs_10):
        # Importing repro.core.compiled (directly or via the engine's
        # lazy lookup) self-registers the kernel.
        assert _KERNELS["compiled"] is _CompiledRun
        result = run_kernel("compiled", graphs_10)
        assert result.converged


class TestFallback:
    def test_bit_identical_to_vectorized(self, graphs_10):
        if HAS_NUMBA:
            pytest.skip("numba installed; the fallback path is inactive")
        vec = run_kernel("vectorized", graphs_10)
        comp = run_kernel("compiled", graphs_10)
        assert comp.iterations == vec.iterations
        assert comp.pair_updates == vec.pair_updates
        assert np.array_equal(comp.matrix.values, vec.matrix.values)
        for name, matrix in comp.directional.items():
            assert np.array_equal(matrix.values, vec.directional[name].values)

    @pytest.mark.parametrize("config_kwargs", [
        {"use_pruning": False},
        {"direction": "forward"},
        {"estimation_iterations": 1},
        {"alpha": 0.5},
    ])
    def test_fallback_across_configs(self, graphs_10, config_kwargs):
        if HAS_NUMBA:
            pytest.skip("numba installed; the fallback path is inactive")
        label = (
            QGramCosineSimilarity() if config_kwargs.get("alpha") else None
        )
        vec = run_kernel("vectorized", graphs_10, config_kwargs, label)
        comp = run_kernel("compiled", graphs_10, config_kwargs, label)
        assert comp.iterations == vec.iterations
        assert np.array_equal(comp.matrix.values, vec.matrix.values)

    def test_fallback_warns_once_per_process(self, graphs_10, caplog):
        if HAS_NUMBA:
            pytest.skip("numba installed; the fallback path is inactive")
        compiled._FALLBACK_NOTED = False
        with caplog.at_level(logging.WARNING, logger=compiled.__name__):
            run_kernel("compiled", graphs_10)
            run_kernel("compiled", graphs_10)
        fallback_warnings = [
            r for r in caplog.records if "falling back" in r.message
        ]
        assert len(fallback_warnings) == 1


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestCompiledDifferential:
    """Differential pinning of the live JIT path (runs only with numba)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_against_reference(self, seed):
        graphs = graphs_for(8 + 2 * seed, seed=seed)
        comp = run_kernel("compiled", graphs)
        ref = run_kernel("reference", graphs)
        assert_equivalent(comp, ref)

    @pytest.mark.parametrize("config_kwargs", [
        {"use_pruning": False},
        {"use_edge_weights": False},
        {"direction": "forward"},
        {"direction": "backward"},
        {"alpha": 0.5},
        {"estimation_iterations": 2},
    ])
    def test_config_matrix_against_reference(self, graphs_10, config_kwargs):
        label = (
            QGramCosineSimilarity() if config_kwargs.get("alpha") else None
        )
        comp = run_kernel("compiled", graphs_10, config_kwargs, label)
        ref = run_kernel("reference", graphs_10, config_kwargs, label)
        assert_equivalent(comp, ref)
