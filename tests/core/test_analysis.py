"""Tests for the empirical analysis tools."""

import pytest

from repro.core.analysis import convergence_curve, estimation_error
from repro.core.config import EMSConfig


class TestEstimationError:
    def test_errors_vanish_beyond_convergence(self, fig1_graphs):
        reports = estimation_error(*fig1_graphs, budgets=(0, 50))
        assert reports[-1].max_abs_error == pytest.approx(0.0, abs=1e-6)

    def test_error_statistics_ordered(self, fig1_graphs):
        for report in estimation_error(*fig1_graphs, budgets=(0, 2)):
            assert report.mean_abs_error <= report.max_abs_error + 1e-12
            assert report.mean_abs_error <= report.rmse + 1e-12
            assert report.rmse <= report.max_abs_error + 1e-12

    def test_budget_zero_has_real_error(self, fig1_graphs):
        # Example 6: S_es(C, 4) = 0.409 vs exact 0.587 -> error >= 0.17.
        (report,) = estimation_error(*fig1_graphs, budgets=(0,))
        assert report.max_abs_error > 0.1

    def test_estimating_config_normalized(self, fig1_graphs):
        # Passing a config that already estimates must not skew the exact
        # reference.
        reports = estimation_error(
            *fig1_graphs, config=EMSConfig(estimation_iterations=0), budgets=(50,)
        )
        assert reports[0].max_abs_error == pytest.approx(0.0, abs=1e-6)

    def test_str_renders(self, fig1_graphs):
        (report,) = estimation_error(*fig1_graphs, budgets=(1,))
        assert "I=1" in str(report)


class TestConvergenceCurve:
    def test_bounded_by_lemma5(self, fig1_graphs):
        config = EMSConfig(direction="forward")
        curve = convergence_curve(*fig1_graphs, config=config, iterations=6)
        for n, delta in enumerate(curve, start=1):
            assert delta <= config.decay**n + 1e-9

    def test_curve_decreasing_after_first(self, fig1_graphs):
        curve = convergence_curve(*fig1_graphs, iterations=6)
        assert curve[1:] == sorted(curve[1:], reverse=True)

    def test_direction_normalized(self, fig1_graphs):
        both = convergence_curve(*fig1_graphs, config=EMSConfig(direction="both"))
        forward = convergence_curve(*fig1_graphs, config=EMSConfig(direction="forward"))
        assert both == forward
