"""Edge-case and failure-injection tests for the EMS engine.

Degenerate graphs (single node, self loops, disconnected parts, wildly
different sizes) must neither crash nor produce out-of-range values.
"""

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog


def graph_of(*traces) -> DependencyGraph:
    return DependencyGraph.from_log(EventLog([list(t) for t in traces]))


class TestDegenerateGraphs:
    def test_single_node_each(self):
        result = EMSEngine(EMSConfig()).similarity(graph_of("a"), graph_of("x"))
        assert result.matrix.get("a", "x") > 0.0
        assert result.converged

    def test_single_node_vs_chain(self):
        result = EMSEngine(EMSConfig()).similarity(graph_of("a"), graph_of("xyz"))
        values = result.matrix.values
        assert values.shape == (1, 3)
        assert (values >= 0.0).all() and (values <= 1.0).all()

    def test_self_loop(self):
        result = EMSEngine(EMSConfig()).similarity(graph_of("aab"), graph_of("xxy"))
        assert result.converged
        assert result.matrix.get("a", "x") > result.matrix.get("a", "y")

    def test_pure_cycle_converges_by_epsilon(self):
        result = EMSEngine(EMSConfig()).similarity(
            graph_of("ababab"), graph_of("xyxyxy")
        )
        assert result.converged

    def test_disconnected_variants(self):
        # Two variants sharing no activities: the graph has two components.
        graph = graph_of("ab", "cd")
        result = EMSEngine(EMSConfig()).similarity(graph, graph)
        assert result.matrix.get("a", "a") >= result.matrix.get("a", "c")

    def test_wildly_asymmetric_sizes(self):
        small = graph_of("ab")
        large = graph_of("abcdefghij")
        result = EMSEngine(EMSConfig()).similarity(small, large)
        assert result.matrix.values.shape == (2, 10)
        assert result.converged


class TestIterationLimits:
    def test_max_iterations_reached_flags_not_converged(self):
        config = EMSConfig(max_iterations=1, epsilon=1e-12, use_pruning=False)
        result = EMSEngine(config).similarity(graph_of("abcde"), graph_of("vwxyz"))
        assert result.iterations <= 2  # one per direction
        assert not result.converged

    def test_tiny_epsilon_still_terminates(self):
        config = EMSConfig(epsilon=1e-12, max_iterations=200)
        result = EMSEngine(config).similarity(graph_of("abc"), graph_of("xyz"))
        assert result.converged


class TestMatrixShapes:
    def test_row_and_column_labels_are_sorted_nodes(self):
        graph_first = graph_of("ba")
        graph_second = graph_of("zyx")
        result = EMSEngine(EMSConfig()).similarity(graph_first, graph_second)
        assert result.matrix.rows == ("a", "b")
        assert result.matrix.cols == ("x", "y", "z")

    def test_pair_updates_zero_only_if_trivial(self):
        result = EMSEngine(EMSConfig()).similarity(graph_of("a"), graph_of("x"))
        assert result.pair_updates >= 1


class TestNumericalStability:
    def test_extreme_frequency_imbalance(self):
        # One activity in 1/500 traces, the other in all.
        traces = [["common", "rare"]] + [["common"]] * 499
        graph = DependencyGraph.from_log(EventLog(traces))
        result = EMSEngine(EMSConfig()).similarity(graph, graph)
        values = result.matrix.values
        assert np.isfinite(values).all()
        assert (values >= 0.0).all() and (values <= 1.0).all()

    def test_near_one_decay(self):
        config = EMSConfig(c=0.999, max_iterations=500, epsilon=1e-6)
        result = EMSEngine(config).similarity(graph_of("abab"), graph_of("xyxy"))
        assert result.converged
        assert (result.matrix.values <= 1.0 + 1e-9).all()
