"""Tests for SimilarityMatrix."""

import numpy as np
import pytest

from repro.core.matrix import SimilarityMatrix


@pytest.fixture()
def matrix() -> SimilarityMatrix:
    return SimilarityMatrix(
        ["a", "b"], ["x", "y", "z"], np.array([[0.1, 0.5, 0.3], [0.9, 0.2, 0.4]])
    )


class TestConstruction:
    def test_shape_validated(self):
        with pytest.raises(ValueError):
            SimilarityMatrix(["a"], ["x"], np.zeros((2, 1)))

    def test_unique_labels(self):
        with pytest.raises(ValueError):
            SimilarityMatrix(["a", "a"], ["x", "y"], np.zeros((2, 2)))

    def test_zeros(self):
        matrix = SimilarityMatrix.zeros(["a"], ["x", "y"])
        assert matrix.average() == 0.0


class TestAccess:
    def test_get(self, matrix):
        assert matrix.get("b", "x") == pytest.approx(0.9)

    def test_average(self, matrix):
        assert matrix.average() == pytest.approx(np.mean([0.1, 0.5, 0.3, 0.9, 0.2, 0.4]))

    def test_values_are_copies(self, matrix):
        values = matrix.values
        values[0, 0] = 99.0
        assert matrix.get("a", "x") == pytest.approx(0.1)

    def test_pairs_enumeration(self, matrix):
        pairs = list(matrix.pairs())
        assert len(pairs) == 6
        assert ("a", "y", 0.5) in [(r, c, round(v, 6)) for r, c, v in pairs]

    def test_best_column(self, matrix):
        assert matrix.best_column_for("a") == ("y", 0.5)

    def test_to_dict(self, matrix):
        assert matrix.to_dict()[("b", "z")] == pytest.approx(0.4)


class TestCombination:
    def test_combine_average(self, matrix):
        combined = matrix.combine(matrix)
        assert combined.get("a", "x") == pytest.approx(0.1)

    def test_combine_weighted(self, matrix):
        other = SimilarityMatrix(matrix.rows, matrix.cols, np.ones((2, 3)))
        combined = matrix.combine(other, weight=0.25)
        assert combined.get("a", "x") == pytest.approx(0.25 * 0.1 + 0.75 * 1.0)

    def test_combine_label_mismatch(self, matrix):
        other = SimilarityMatrix(["p", "q"], matrix.cols, np.zeros((2, 3)))
        with pytest.raises(ValueError):
            matrix.combine(other)

    def test_transposed(self, matrix):
        assert matrix.transposed().get("x", "b") == pytest.approx(0.9)
