"""Tests for similarity upper bounds (Lemma 5 / Proposition 6 / Corollary 7)."""

import math

import numpy as np
import pytest

from repro.core.bounds import average_upper_bound, matrix_upper_bound, pair_upper_bound
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, iteration_trace
from repro.core.pruning import ConvergenceSchedule

FORWARD = EMSConfig(alpha=1.0, c=0.8, direction="forward")


class TestPairUpperBound:
    def test_general_bound_formula(self):
        # S^k + decay^k / (1 - decay)
        assert pair_upper_bound(0.1, k=2, decay=0.5) == pytest.approx(0.1 + 0.25 / 0.5)

    def test_converged_pair_bound_is_value(self):
        assert pair_upper_bound(0.37, k=5, decay=0.8, h=3) == 0.37

    def test_level_bound_tighter_than_general(self):
        general = pair_upper_bound(0.1, k=1, decay=0.5)
        level = pair_upper_bound(0.1, k=1, decay=0.5, h=3)
        assert level < general

    def test_clipped_at_one(self):
        assert pair_upper_bound(0.9, k=0, decay=0.8) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pair_upper_bound(0.1, k=-1, decay=0.5)
        with pytest.raises(ValueError):
            pair_upper_bound(0.1, k=1, decay=1.0)


class TestSoundness:
    """The bounds must dominate the true converged similarity."""

    def test_bound_dominates_limit_at_every_iteration(self, fig1_graphs):
        exact = EMSEngine(FORWARD).similarity(*fig1_graphs).matrix.values
        schedule = ConvergenceSchedule(*fig1_graphs)
        snapshots = iteration_trace(*fig1_graphs, FORWARD, iterations=5)
        for k, snapshot in enumerate(snapshots, start=1):
            bound = matrix_upper_bound(
                snapshot.values, k, FORWARD.decay, schedule.pair_levels
            )
            assert (bound >= exact - 1e-9).all()

    def test_general_bound_also_sound(self, fig1_graphs):
        exact = EMSEngine(FORWARD).similarity(*fig1_graphs).matrix.values
        snapshots = iteration_trace(*fig1_graphs, FORWARD, iterations=3)
        for k, snapshot in enumerate(snapshots, start=1):
            bound = matrix_upper_bound(snapshot.values, k, FORWARD.decay)
            assert (bound >= exact - 1e-9).all()

    def test_bound_tightens_with_iterations(self, fig1_graphs):
        schedule = ConvergenceSchedule(*fig1_graphs)
        snapshots = iteration_trace(*fig1_graphs, FORWARD, iterations=5)
        averages = [
            average_upper_bound(s.values, k, FORWARD.decay, schedule.pair_levels)
            for k, s in enumerate(snapshots, start=1)
        ]
        assert averages == sorted(averages, reverse=True)


class TestAverageUpperBound:
    def test_empty_matrix(self):
        assert average_upper_bound(np.zeros((0, 0)), 1, 0.5) == 0.0

    def test_infinite_levels_fall_back_to_general(self):
        values = np.array([[0.2]])
        levels = np.array([[math.inf]])
        with_levels = average_upper_bound(values, 1, 0.5, levels)
        general = average_upper_bound(values, 1, 0.5)
        assert with_levels == pytest.approx(general)
