"""Tests for composite event matching (Section 4, Algorithm 2)."""

import pytest

from repro.core.composite import CompositeMatcher, discover_candidates
from repro.core.config import EMSConfig
from repro.logs.log import EventLog


class TestDiscoverCandidates:
    def test_always_adjacent_pair_found(self):
        log = EventLog([["a", "b", "c"], ["x", "a", "b"]])
        assert ("a", "b") in discover_candidates(log)

    def test_sometimes_adjacent_pair_needs_lower_confidence(self):
        log = EventLog([["a", "b"], ["a", "c"]])
        assert ("a", "b") not in discover_candidates(log, min_confidence=1.0)
        assert ("a", "b") in discover_candidates(log, min_confidence=0.5)

    def test_chains_extend(self):
        log = EventLog([["a", "b", "c"]] * 5)
        candidates = discover_candidates(log, max_run_length=3)
        assert ("a", "b", "c") in candidates
        assert ("a", "b") in candidates
        assert ("b", "c") in candidates

    def test_max_run_length_respected(self):
        log = EventLog([["a", "b", "c", "d"]] * 3)
        candidates = discover_candidates(log, max_run_length=2)
        assert all(len(run) == 2 for run in candidates)

    def test_max_candidates_cap(self):
        log = EventLog([["a", "b", "c", "d"]] * 3)
        assert len(discover_candidates(log, max_candidates=2)) == 2
        assert discover_candidates(log, max_candidates=0) == []

    def test_no_cyclic_candidates(self):
        log = EventLog([["a", "b", "a", "b"]] * 3)
        for run in discover_candidates(log, min_confidence=0.4):
            assert len(set(run)) == len(run)

    def test_self_loops_ignored(self):
        log = EventLog([["a", "a", "b"]] * 3)
        for run in discover_candidates(log, min_confidence=0.3):
            assert all(run[i] != run[i + 1] for i in range(len(run) - 1))

    def test_validation(self):
        log = EventLog([["a", "b"]])
        with pytest.raises(ValueError):
            discover_candidates(log, min_confidence=0.0)
        with pytest.raises(ValueError):
            discover_candidates(log, max_run_length=1)

    def test_ordering_strongest_first(self):
        # (c, d) is always adjacent (confidence 1.0); (a, b) only in 80%
        # of a's occurrences (confidence 0.8) — confidence orders first.
        log = EventLog([["a", "b"]] * 8 + [["a", "c", "d"]] * 2)
        candidates = discover_candidates(log, min_confidence=0.1, max_run_length=2)
        assert candidates[0] == ("c", "d")
        assert ("a", "b") in candidates


class TestGreedyMatcher:
    @pytest.fixture()
    def matcher(self) -> CompositeMatcher:
        return CompositeMatcher(
            EMSConfig(), delta=0.005, min_confidence=0.9, max_run_length=2
        )

    def test_paper_example7(self, fig1_logs, matcher):
        """Greedy accepts exactly {C, D}; avg rises 0.502 -> ~0.509."""
        result = matcher.match(*fig1_logs)
        assert result.accepted_first == (("C", "D"),)
        assert result.accepted_second == ()
        assert result.average == pytest.approx(0.509, abs=2e-3)

    def test_members_expose_composite(self, fig1_logs, matcher):
        result = matcher.match(*fig1_logs)
        assert result.members_first["⟨C+D⟩"] == frozenset({"C", "D"})

    def test_high_delta_blocks_merging(self, fig1_logs):
        matcher = CompositeMatcher(EMSConfig(), delta=0.5, min_confidence=0.9)
        result = matcher.match(*fig1_logs)
        assert result.accepted_first == ()
        assert result.accepted_second == ()

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            CompositeMatcher(delta=-0.1)

    def test_pruning_variants_agree_on_result(self, fig1_logs):
        results = []
        for use_unchanged in (False, True):
            for use_bounds in (False, True):
                matcher = CompositeMatcher(
                    EMSConfig(),
                    delta=0.005,
                    min_confidence=0.9,
                    max_run_length=2,
                    use_unchanged=use_unchanged,
                    use_bounds=use_bounds,
                )
                results.append(matcher.match(*fig1_logs))
        first = results[0]
        for other in results[1:]:
            assert other.accepted_first == first.accepted_first
            assert other.accepted_second == first.accepted_second
            assert other.average == pytest.approx(first.average, abs=1e-4)

    def test_pruning_reduces_work(self, fig1_logs):
        pruned = CompositeMatcher(
            EMSConfig(), delta=0.005, min_confidence=0.9, max_run_length=2,
            use_unchanged=True, use_bounds=True,
        ).match(*fig1_logs)
        unpruned = CompositeMatcher(
            EMSConfig(), delta=0.005, min_confidence=0.9, max_run_length=2,
            use_unchanged=False, use_bounds=False,
        ).match(*fig1_logs)
        assert pruned.stats.pair_updates < unpruned.stats.pair_updates

    def test_stats_recorded(self, fig1_logs, matcher):
        result = matcher.match(*fig1_logs)
        assert result.stats.rounds >= 1
        assert result.stats.candidates_evaluated >= 1
        assert result.stats.pair_updates > 0

    def test_accepted_runs_pairwise_disjoint(self):
        # Overlapping candidates must never both be accepted.
        log_first = EventLog([["a", "b", "c", "d"]] * 20)
        log_second = EventLog([["x", "y"]] * 20)
        matcher = CompositeMatcher(
            EMSConfig(), delta=0.0, min_confidence=0.9, max_run_length=3
        )
        result = matcher.match(log_first, log_second)
        seen: set[str] = set()
        for run in result.accepted_first + result.accepted_second:
            flattened = {
                member
                for node in run
                for member in (
                    result.members_first.get(node, frozenset({node}))
                    | result.members_second.get(node, frozenset({node}))
                )
            }
            # No accepted composite may reuse an already-merged activity
            # unless it is the nested merge of a previous composite.
            assert not (seen & flattened) or any(
                node.startswith("⟨") for node in run
            )
            seen.update(flattened)

    def test_labels_still_find_the_turbine_composite(self):
        from repro.similarity.labels import QGramCosineSimilarity
        from repro.synthesis.examples import turbine_order_logs

        log_first, log_second, _ = turbine_order_logs()
        matcher = CompositeMatcher(
            EMSConfig(alpha=0.5),
            label_similarity=QGramCosineSimilarity(),
            delta=0.005,
            min_confidence=0.9,
            max_run_length=2,
        )
        result = matcher.match(log_first, log_second)
        assert (("Check Inventory", "Validate"),) == result.accepted_first

    def test_no_candidates_returns_singleton_matching(self):
        # Alternating log: nothing is always-adjacent.
        log_first = EventLog([["a", "b"], ["b", "a"]] * 3)
        log_second = EventLog([["x", "y"], ["y", "x"]] * 3)
        matcher = CompositeMatcher(EMSConfig(), min_confidence=1.0)
        result = matcher.match(log_first, log_second)
        assert result.accepted_first == ()
        assert set(result.matrix.rows) == {"a", "b"}


class TestParallelEvaluation:
    """workers > 1 must reproduce the serial greedy search exactly."""

    KNOBS = dict(delta=0.005, min_confidence=0.9, max_run_length=2)

    def test_workers_match_serial(self, fig1_logs):
        import numpy as np

        serial = CompositeMatcher(EMSConfig(), **self.KNOBS).match(*fig1_logs)
        parallel = CompositeMatcher(
            EMSConfig(), workers=2, **self.KNOBS
        ).match(*fig1_logs)
        assert parallel.accepted_first == serial.accepted_first
        assert parallel.accepted_second == serial.accepted_second
        assert parallel.members_first == serial.members_first
        np.testing.assert_allclose(
            parallel.matrix.values, serial.matrix.values, rtol=0, atol=1e-12
        )
        assert parallel.stats.rounds == serial.stats.rounds
        assert parallel.stats.candidates_evaluated == serial.stats.candidates_evaluated

    def test_workers_match_serial_with_labels(self):
        import numpy as np

        from repro.similarity.labels import QGramCosineSimilarity
        from repro.synthesis.examples import turbine_order_logs

        log_first, log_second, _ = turbine_order_logs()
        results = []
        for workers in (0, 2):
            matcher = CompositeMatcher(
                EMSConfig(alpha=0.5),
                label_similarity=QGramCosineSimilarity(),
                workers=workers,
                **self.KNOBS,
            )
            results.append(matcher.match(log_first, log_second))
        serial, parallel = results
        assert parallel.accepted_first == serial.accepted_first
        assert parallel.accepted_second == serial.accepted_second
        np.testing.assert_allclose(
            parallel.matrix.values, serial.matrix.values, rtol=0, atol=1e-12
        )

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            CompositeMatcher(workers=-1)

    def test_budgeted_run_stays_serial_and_exact(self, fig1_logs):
        from repro.runtime.budget import MatchBudget

        matcher = CompositeMatcher(
            EMSConfig(), workers=2, budget=MatchBudget(max_pair_updates=10**9),
            **self.KNOBS,
        )
        result = matcher.match(*fig1_logs)
        assert result.runtime is not None
        assert result.runtime.stage == "exact"
        assert result.accepted_first == (("C", "D"),)


class TestSharedMemoryTransport:
    """The per-round shared-memory shipping of directional matrices.

    The transport is pure plumbing — workers must see the exact same
    float64 payload whether it travels through a shared-memory block or
    (on platforms without one) through the pickling fallback.
    """

    @staticmethod
    def _directional():
        import numpy as np

        from repro.core.matrix import SimilarityMatrix

        rows, cols = ("A", "B"), ("X", "Y", "Z")
        rng = np.random.default_rng(5)
        return {
            "forward": SimilarityMatrix(rows, cols, rng.random((2, 3))),
            "backward": SimilarityMatrix(rows, cols, rng.random((2, 3))),
        }

    def test_pack_unpack_roundtrip(self):
        import numpy as np

        from repro.core.composite import (
            _pack_directional,
            _resolve_directional,
            _SharedDirectional,
        )

        directional = self._directional()
        handle, block = _pack_directional(directional)
        if handle is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            assert isinstance(handle, _SharedDirectional)
            restored = _resolve_directional(handle)
            assert set(restored) == set(directional)
            for name, matrix in directional.items():
                assert restored[name].rows == matrix.rows
                assert restored[name].cols == matrix.cols
                np.testing.assert_array_equal(
                    restored[name].values, matrix.values
                )
        finally:
            block.close()
            block.unlink()

    def test_plain_payloads_pass_through(self):
        from repro.core.composite import _resolve_directional

        directional = self._directional()
        assert _resolve_directional(directional) is directional
        assert _resolve_directional(None) is None

    def test_allocation_failure_falls_back(self, monkeypatch):
        import repro.core.composite as composite_module
        from repro.core.composite import _pack_directional

        def refuse(*args, **kwargs):
            raise OSError("no shared memory here")

        monkeypatch.setattr(
            composite_module.shared_memory, "SharedMemory", refuse
        )
        assert _pack_directional(self._directional()) == (None, None)

    def test_workers_match_serial_without_shared_memory(
        self, fig1_logs, monkeypatch
    ):
        """The pickling fallback reproduces the serial search too."""
        import numpy as np

        import repro.core.composite as composite_module

        knobs = dict(delta=0.005, min_confidence=0.9, max_run_length=2)
        serial = CompositeMatcher(EMSConfig(), **knobs).match(*fig1_logs)
        monkeypatch.setattr(
            composite_module, "_pack_directional", lambda directional: (None, None)
        )
        parallel = CompositeMatcher(
            EMSConfig(), workers=2, **knobs
        ).match(*fig1_logs)
        assert parallel.accepted_first == serial.accepted_first
        assert parallel.accepted_second == serial.accepted_second
        assert parallel.stats.pair_updates == serial.stats.pair_updates
        np.testing.assert_allclose(
            parallel.matrix.values, serial.matrix.values, rtol=0, atol=1e-12
        )

    def test_multi_candidate_round_ships_via_shared_memory(self, monkeypatch):
        """A >1-candidate round packs one block and stays byte-identical."""
        import numpy as np

        import repro.core.composite as composite_module

        packed = []
        original = composite_module._pack_directional

        def counting(directional):
            outcome = original(directional)
            packed.append(outcome[0] is not None)
            return outcome

        monkeypatch.setattr(composite_module, "_pack_directional", counting)
        # Two always-adjacent runs on the first side -> a two-task round,
        # which is what routes through the worker pool (single-task
        # rounds fall back to the serial loop).
        log_first = EventLog(
            [["a", "b", "x", "c", "d"], ["c", "d", "y", "a", "b"],
             ["a", "b", "z", "c", "d"]] * 3,
            name="shm-first",
        )
        log_second = EventLog([["p", "q"], ["q", "p"]] * 5, name="shm-second")
        knobs = dict(delta=0.001, min_confidence=0.9, max_run_length=2)
        serial = CompositeMatcher(EMSConfig(), **knobs).match(
            log_first, log_second
        )
        parallel = CompositeMatcher(EMSConfig(), workers=2, **knobs).match(
            log_first, log_second
        )
        assert packed, "the parallel round never reached the pool path"
        assert parallel.accepted_first == serial.accepted_first
        assert parallel.accepted_second == serial.accepted_second
        assert parallel.stats.pair_updates == serial.stats.pair_updates
        np.testing.assert_array_equal(
            parallel.matrix.values, serial.matrix.values
        )
