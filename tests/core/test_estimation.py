"""Tests for the closed-form estimation (Section 3.5, formula (2))."""

import math

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.core.estimation import (
    estimate_matrix,
    estimate_pair,
    estimation_coefficients,
)

FORWARD = EMSConfig(alpha=1.0, c=0.8, direction="forward")


class TestCoefficients:
    def test_q_zero_for_single_predecessors(self):
        q, a = estimation_coefficients(
            np.array([1]), np.array([1]), np.array([[0.457]]), np.zeros((1, 1)), 1.0, 0.8
        )
        assert q[0, 0] == pytest.approx(0.0)
        assert a[0, 0] == pytest.approx(0.457)

    def test_q_below_decay(self):
        q, _ = estimation_coefficients(
            np.array([2, 3]), np.array([2, 5]), np.full((2, 2), 0.8),
            np.zeros((2, 2)), 1.0, 0.8,
        )
        assert (q < 0.8).all()
        assert (q >= 0.0).all()

    def test_label_term(self):
        _, a = estimation_coefficients(
            np.array([1]), np.array([1]), np.array([[0.8]]), np.array([[1.0]]), 0.5, 0.8
        )
        assert a[0, 0] == pytest.approx(0.5 * 0.8 + 0.5 * 1.0)


class TestEstimatePair:
    def test_converged_pairs_keep_exact_value(self):
        assert estimate_pair(0.42, q=0.5, a=0.1, level=3, exact_iterations=5) == 0.42

    def test_infinite_level_geometric_limit(self):
        value = estimate_pair(0.0, q=0.5, a=0.2, level=math.inf, exact_iterations=0)
        assert value == pytest.approx(0.2 / 0.5)

    def test_clipped_at_one(self):
        assert estimate_pair(0.0, q=0.9, a=0.5, level=math.inf, exact_iterations=0) == 1.0

    def test_finite_level_formula(self):
        # S_es^2 = q^2 * S^0 + a(1 + q)
        value = estimate_pair(0.3, q=0.5, a=0.1, level=2, exact_iterations=0)
        assert value == pytest.approx(0.25 * 0.3 + 0.1 * 1.5)


class TestPaperExample6:
    def test_single_pred_estimate_is_exact(self, fig1_graphs):
        """(A, 1) has A = B = 1, so q = 0 and the estimate equals the
        exact 0.457 — the paper prints 0.6 but its own formula gives 0.457
        (documented typo, see DESIGN.md)."""
        engine = EMSEngine(FORWARD.with_(estimation_iterations=0))
        result = engine.similarity(*fig1_graphs)
        assert result.matrix.get("A", "1") == pytest.approx(0.457, abs=1e-3)

    def test_c4_estimate_matches_paper(self, fig1_graphs):
        # Example 6: I = 0 estimates S(C, 4) at 0.409 (exact: 0.587).
        engine = EMSEngine(FORWARD.with_(estimation_iterations=0))
        result = engine.similarity(*fig1_graphs)
        assert result.matrix.get("C", "4") == pytest.approx(0.409, abs=1e-3)
        assert result.estimated

    def test_larger_budget_reaches_exact(self, fig1_graphs):
        exact = EMSEngine(FORWARD).similarity(*fig1_graphs)
        estimated = EMSEngine(FORWARD.with_(estimation_iterations=50)).similarity(
            *fig1_graphs
        )
        np.testing.assert_allclose(
            estimated.matrix.values, exact.matrix.values, atol=1e-3
        )


class TestEstimateMatrix:
    def test_only_unconverged_pairs_touched(self):
        exact = np.array([[0.3, 0.6]])
        q = np.array([[0.5, 0.5]])
        a = np.array([[0.1, 0.1]])
        levels = np.array([[1.0, 5.0]])
        result = estimate_matrix(exact, q, a, levels, exact_iterations=2)
        assert result[0, 0] == pytest.approx(0.3)  # level 1 <= I: untouched
        assert result[0, 1] != pytest.approx(0.6)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            estimate_matrix(
                np.zeros((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)),
                np.ones((1, 1)), -1,
            )

    def test_values_clipped(self):
        result = estimate_matrix(
            np.zeros((1, 1)),
            np.array([[0.95]]),
            np.array([[0.9]]),
            np.array([[math.inf]]),
            0,
        )
        assert result[0, 0] == 1.0
