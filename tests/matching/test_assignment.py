"""Tests for the from-scratch Hungarian algorithm."""

import numpy as np
import pytest

from repro.matching.assignment import (
    assignment_weight,
    max_weight_assignment,
    min_cost_assignment,
)


class TestMaxWeight:
    def test_identity_optimal(self):
        weights = np.eye(3)
        assert max_weight_assignment(weights) == [(0, 0), (1, 1), (2, 2)]

    def test_antidiagonal(self):
        weights = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert max_weight_assignment(weights) == [(0, 1), (1, 0)]

    def test_rectangular_wide(self):
        weights = np.array([[0.1, 0.9, 0.2], [0.8, 0.1, 0.3]])
        assignment = max_weight_assignment(weights)
        assert assignment == [(0, 1), (1, 0)]

    def test_rectangular_tall(self):
        weights = np.array([[0.1, 0.9, 0.2], [0.8, 0.1, 0.3]]).T
        assignment = max_weight_assignment(weights)
        assert assignment == [(0, 1), (1, 0)]

    def test_negative_weights_supported(self):
        weights = np.array([[-5.0, -1.0], [-1.0, -5.0]])
        assert max_weight_assignment(weights) == [(0, 1), (1, 0)]

    def test_empty(self):
        assert max_weight_assignment(np.zeros((0, 0))) == []

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            max_weight_assignment(np.zeros(3))

    def test_classic_instance_against_bruteforce(self):
        from itertools import permutations

        cost = np.array([[90, 75, 75, 80],
                         [35, 85, 55, 65],
                         [125, 95, 90, 105],
                         [45, 110, 95, 115]], dtype=float)
        assignment = min_cost_assignment(cost)
        total = sum(cost[i, j] for i, j in assignment)
        best = min(
            sum(cost[i, p[i]] for i in range(4)) for p in permutations(range(4))
        )
        assert total == pytest.approx(best)


class TestAgainstScipy:
    scipy = pytest.importorskip("scipy.optimize")

    def test_random_square_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            size = rng.integers(1, 9)
            weights = rng.random((size, size))
            ours = max_weight_assignment(weights)
            rows, cols = self.scipy.linear_sum_assignment(weights, maximize=True)
            assert assignment_weight(weights, ours) == pytest.approx(
                float(weights[rows, cols].sum())
            )

    def test_random_rectangular_instances(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            shape = (int(rng.integers(1, 8)), int(rng.integers(1, 8)))
            weights = rng.random(shape)
            ours = max_weight_assignment(weights)
            rows, cols = self.scipy.linear_sum_assignment(weights, maximize=True)
            assert assignment_weight(weights, ours) == pytest.approx(
                float(weights[rows, cols].sum())
            )
            # Injectivity on both sides.
            assert len({i for i, _ in ours}) == len(ours)
            assert len({j for _, j in ours}) == len(ours)

    def test_min_cost_against_scipy(self):
        rng = np.random.default_rng(13)
        for _ in range(10):
            cost = rng.random((6, 6)) * 10
            ours = min_cost_assignment(cost)
            rows, cols = self.scipy.linear_sum_assignment(cost)
            assert sum(cost[i, j] for i, j in ours) == pytest.approx(
                float(cost[rows, cols].sum())
            )
