"""Tests for correspondences and the f-measure evaluation."""

import pytest

from repro.matching.evaluation import (
    Correspondence,
    correspondence_links,
    evaluate,
    mean_evaluation,
)


class TestCorrespondence:
    def test_one_to_one(self):
        correspondence = Correspondence.one_to_one("a", "x")
        assert correspondence.links() == frozenset({("a", "x")})
        assert not correspondence.is_composite()

    def test_composite_links_cross_product(self):
        correspondence = Correspondence(frozenset({"c", "d"}), frozenset({"4"}))
        assert correspondence.links() == frozenset({("c", "4"), ("d", "4")})
        assert correspondence.is_composite()

    def test_empty_side_rejected(self):
        with pytest.raises(ValueError):
            Correspondence(frozenset(), frozenset({"x"}))

    def test_links_union(self):
        links = correspondence_links(
            [Correspondence.one_to_one("a", "x"), Correspondence.one_to_one("b", "y")]
        )
        assert links == frozenset({("a", "x"), ("b", "y")})


class TestEvaluate:
    def test_perfect(self):
        truth = [Correspondence.one_to_one("a", "x")]
        result = evaluate(truth, truth)
        assert result.precision == result.recall == result.f_measure == 1.0

    def test_empty_found(self):
        result = evaluate([Correspondence.one_to_one("a", "x")], [])
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f_measure == 0.0

    def test_partial_composite_credit(self):
        truth = [Correspondence(frozenset({"c", "d"}), frozenset({"4"}))]
        found = [Correspondence.one_to_one("c", "4")]
        result = evaluate(truth, found)
        assert result.precision == 1.0
        assert result.recall == pytest.approx(0.5)
        assert result.f_measure == pytest.approx(2 / 3)

    def test_false_positive_hurts_precision_only(self):
        truth = [Correspondence.one_to_one("a", "x")]
        found = [
            Correspondence.one_to_one("a", "x"),
            Correspondence.one_to_one("b", "y"),
        ]
        result = evaluate(truth, found)
        assert result.precision == pytest.approx(0.5)
        assert result.recall == 1.0

    def test_counts_exposed(self):
        truth = [Correspondence.one_to_one("a", "x")]
        found = [Correspondence.one_to_one("a", "y")]
        result = evaluate(truth, found)
        assert result.truth_size == 1
        assert result.found_size == 1
        assert result.hit_count == 0

    def test_str_formats(self):
        result = evaluate(
            [Correspondence.one_to_one("a", "x")], [Correspondence.one_to_one("a", "x")]
        )
        assert "F=1.000" in str(result)


class TestMeanEvaluation:
    def test_macro_average(self):
        truth = [Correspondence.one_to_one("a", "x")]
        perfect = evaluate(truth, truth)
        empty = evaluate(truth, [])
        mean = mean_evaluation([perfect, empty])
        assert mean.f_measure == pytest.approx(0.5)
        assert mean.hit_count == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_evaluation([])
