"""Tests for threshold calibration."""

import numpy as np
import pytest

from repro.core.matrix import SimilarityMatrix
from repro.matching.calibration import calibrate_threshold
from repro.matching.evaluation import Correspondence


def labeled_pair(noise_pairs: int = 1):
    """A matrix where true pairs score 0.9 and noise pairs 0.3."""
    rows = ["a", "b", "n1", "n2"][: 2 + noise_pairs]
    cols = ["x", "y", "m1", "m2"][: 2 + noise_pairs]
    values = np.full((len(rows), len(cols)), 0.1)
    values[0, 0] = 0.9
    values[1, 1] = 0.85
    for index in range(noise_pairs):
        values[2 + index, 2 + index] = 0.3
    truth = [Correspondence.one_to_one("a", "x"), Correspondence.one_to_one("b", "y")]
    return SimilarityMatrix(rows, cols, values), truth


class TestCalibrateThreshold:
    def test_finds_separating_threshold(self):
        calibration = calibrate_threshold([labeled_pair(noise_pairs=2)])
        # Selection keeps pairs *strictly above* the threshold, so any
        # threshold in [0.3, 0.85) separates signal from noise.
        assert 0.3 <= calibration.best_threshold < 0.85
        assert calibration.best_f_measure == 1.0

    def test_curve_covers_grid(self):
        calibration = calibrate_threshold(
            [labeled_pair()], thresholds=(0.0, 0.5, 0.9)
        )
        assert [point[0] for point in calibration.curve] == [0.0, 0.5, 0.9]

    def test_multiple_pairs_averaged(self):
        calibration = calibrate_threshold([labeled_pair(), labeled_pair(2)])
        assert calibration.best_f_measure > 0.9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_threshold([])

    def test_str(self):
        calibration = calibrate_threshold([labeled_pair()])
        assert "threshold" in str(calibration)
