"""Tests for correspondence selection."""

import numpy as np
import pytest

from repro.core.matrix import SimilarityMatrix
from repro.matching.selection import (
    pairs_to_correspondences,
    select_correspondences,
    select_pairs,
)


@pytest.fixture()
def matrix() -> SimilarityMatrix:
    return SimilarityMatrix(
        ["a", "b"], ["x", "y"], np.array([[0.9, 0.2], [0.3, 0.8]])
    )


class TestSelectPairs:
    def test_maximum_total(self, matrix):
        pairs = select_pairs(matrix)
        assert {(p.left, p.right) for p in pairs} == {("a", "x"), ("b", "y")}

    def test_threshold_filters(self, matrix):
        pairs = select_pairs(matrix, threshold=0.85)
        assert {(p.left, p.right) for p in pairs} == {("a", "x")}

    def test_zero_similarity_dropped_by_default(self):
        matrix = SimilarityMatrix(["a"], ["x", "y"], np.array([[0.0, 0.0]]))
        assert select_pairs(matrix) == []

    def test_threshold_validated(self, matrix):
        with pytest.raises(ValueError):
            select_pairs(matrix, threshold=1.5)

    def test_assignment_beats_greedy(self):
        # Greedy row-max would pick (a, x) then leave b with 0.1; the
        # assignment picks the globally better cross pairing.
        matrix = SimilarityMatrix(
            ["a", "b"], ["x", "y"], np.array([[0.9, 0.8], [0.85, 0.1]])
        )
        pairs = select_pairs(matrix)
        assert {(p.left, p.right) for p in pairs} == {("a", "y"), ("b", "x")}


class TestCorrespondences:
    def test_member_expansion(self, matrix):
        pairs = select_pairs(matrix)
        members_left = {"a": frozenset({"a1", "a2"})}
        correspondences = pairs_to_correspondences(pairs, members_left, None)
        by_right = {min(c.right): c for c in correspondences}
        assert by_right["x"].left == frozenset({"a1", "a2"})
        assert by_right["y"].left == frozenset({"b"})

    def test_one_call_pipeline(self, matrix):
        correspondences = select_correspondences(matrix, threshold=0.5)
        assert len(correspondences) == 2
        assert all(len(c.left) == 1 for c in correspondences)
