"""Tests for the alternative selection strategies."""

import numpy as np
import pytest

from repro.core.matrix import SimilarityMatrix
from repro.matching.strategies import (
    greedy_selection,
    mutual_best_selection,
    stable_marriage_selection,
)

ALL_STRATEGIES = [greedy_selection, stable_marriage_selection, mutual_best_selection]


@pytest.fixture()
def matrix() -> SimilarityMatrix:
    return SimilarityMatrix(
        ["a", "b", "c"],
        ["x", "y", "z"],
        np.array([[0.9, 0.1, 0.2], [0.3, 0.8, 0.1], [0.2, 0.4, 0.7]]),
    )


class TestCommonContract:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.__name__)
    def test_injective(self, strategy, matrix):
        pairs = strategy(matrix)
        lefts = [pair.left for pair in pairs]
        rights = [pair.right for pair in pairs]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.__name__)
    def test_clear_diagonal_found(self, strategy, matrix):
        pairs = strategy(matrix)
        assert {(p.left, p.right) for p in pairs} == {("a", "x"), ("b", "y"), ("c", "z")}

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.__name__)
    def test_threshold_validated(self, strategy, matrix):
        with pytest.raises(ValueError):
            strategy(matrix, threshold=2.0)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.__name__)
    def test_empty_matrix(self, strategy):
        empty = SimilarityMatrix.zeros([], [])
        assert strategy(empty) == []


class TestGreedy:
    def test_greedy_takes_global_max_first(self):
        matrix = SimilarityMatrix(
            ["a", "b"], ["x", "y"], np.array([[0.9, 0.8], [0.85, 0.1]])
        )
        pairs = greedy_selection(matrix)
        # Greedy grabs (a, x) = 0.9 first, leaving (b, y) = 0.1 — unlike
        # the Hungarian, which would pick the cross pairing.
        assert {(p.left, p.right) for p in pairs} == {("a", "x"), ("b", "y")}

    def test_threshold_stops_selection(self, matrix):
        pairs = greedy_selection(matrix, threshold=0.75)
        assert {(p.left, p.right) for p in pairs} == {("a", "x"), ("b", "y")}


class TestMutualBest:
    def test_non_mutual_pairs_dropped(self):
        # Row a's best is x, but x's best row is b.
        matrix = SimilarityMatrix(
            ["a", "b"], ["x", "y"], np.array([[0.6, 0.1], [0.9, 0.8]])
        )
        pairs = mutual_best_selection(matrix)
        assert {(p.left, p.right) for p in pairs} == {("b", "x")}


class TestStableMarriage:
    def test_no_blocking_pair(self, matrix):
        pairs = stable_marriage_selection(matrix)
        values = matrix.values
        rows = {p.left: p for p in pairs}
        cols = {p.right: p for p in pairs}
        for left in matrix.rows:
            for right in matrix.cols:
                current_left = rows.get(left)
                current_right = cols.get(right)
                if current_left is not None and current_right is not None:
                    i, j = matrix.rows.index(left), matrix.cols.index(right)
                    # A blocking pair would prefer each other to partners.
                    blocking = (
                        values[i, j] > current_left.similarity
                        and values[i, j] > current_right.similarity
                    )
                    assert not blocking
