"""End-to-end integration tests over the benchmark corpus.

These run the full pipeline (corpus synthesis -> graphs -> similarity ->
selection -> evaluation) on small corpus slices and assert the paper's
headline orderings.  They are the slowest tests in the suite (a few
seconds each) and act as a regression net for the experiment results.
"""

import pytest

from repro.baselines import BHVMatcher, GEDMatcher
from repro.experiments.harness import aggregate_runs, run_matrix, singleton_matchers
from repro.matchers import EMSMatcher
from repro.synthesis.corpus import build_real_like_corpus, singleton_testbeds


@pytest.fixture(scope="module")
def testbeds():
    corpus = build_real_like_corpus(seed=2014, traces_per_log=100)
    return singleton_testbeds(corpus)


class TestHeadlineOrdering:
    def test_ems_beats_ged_on_average(self, testbeds):
        pairs = (
            testbeds["DS-F"][:4] + testbeds["DS-B"][:4] + testbeds["DS-FB"][:4]
        )
        runs = run_matrix([EMSMatcher(), GEDMatcher()], pairs)
        aggregates = aggregate_runs(runs)
        assert aggregates["EMS"].mean_f_measure > aggregates["GED"].mean_f_measure

    def test_ems_beats_bhv_on_dislocated_beginnings(self, testbeds):
        pairs = testbeds["DS-B"][:6]
        runs = run_matrix([EMSMatcher(), BHVMatcher()], pairs)
        aggregates = aggregate_runs(runs)
        assert aggregates["EMS"].mean_f_measure > aggregates["BHV"].mean_f_measure

    def test_bhv_better_on_dsf_than_dsb(self, testbeds):
        matcher = BHVMatcher()
        dsf = aggregate_runs(run_matrix([matcher], testbeds["DS-F"][:8]))["BHV"]
        dsb = aggregate_runs(run_matrix([matcher], testbeds["DS-B"][:8]))["BHV"]
        assert dsf.mean_f_measure > dsb.mean_f_measure

    def test_no_matcher_dnfs_on_the_real_corpus(self, testbeds):
        pairs = testbeds["DS-FB"][:3]
        runs = run_matrix(singleton_matchers(), pairs)
        assert all(run.finished for run in runs)


class TestDeterminism:
    def test_corpus_rebuild_identical(self):
        first = build_real_like_corpus(seed=7, traces_per_log=20)
        second = build_real_like_corpus(seed=7, traces_per_log=20)
        assert len(first) == len(second)
        for pair_a, pair_b in zip(first, second):
            assert pair_a.log_first == pair_b.log_first
            assert pair_a.log_second == pair_b.log_second
            assert pair_a.truth == pair_b.truth

    def test_matching_rerun_identical(self, testbeds):
        pair = testbeds["DS-B"][0]
        first = EMSMatcher().match(pair.log_first, pair.log_second)
        second = EMSMatcher().match(pair.log_first, pair.log_second)
        assert first.correspondences == second.correspondences
        assert first.objective == second.objective
