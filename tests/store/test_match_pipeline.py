"""Warm end-to-end matching: every store route is bit-identical to cold."""

import random

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.logs.csvio import read_csv
from repro.logs.xes import read_xes, write_xes
from repro.matchers import EMSMatcher
from repro.runtime.budget import MatchBudget
from repro.store import MatchStore, match_stored
from repro.store.matchstore import matrix_content_key, restore_result
from repro.store.logstore import counts_content_key, file_digest


def write_pair(tmp_path, seed=3, cases=25):
    rng = random.Random(seed)
    paths = []
    for side, prefix in (("a", "p"), ("b", "q")):
        rows = ["case_id,activity"]
        for i in range(cases):
            for position in range(rng.randint(1, 5)):
                rows.append(f"case-{i},{prefix}{rng.randint(0, 6)}")
        path = tmp_path / f"{side}.csv"
        path.write_text("\n".join(rows) + "\n")
        paths.append(path)
    return tuple(paths)


def cold_outcome(paths, matcher=None):
    matcher = matcher or EMSMatcher()
    return matcher.match(
        read_csv(paths[0], name=paths[0].stem),
        read_csv(paths[1], name=paths[1].stem),
    )


def cold_matrix(paths, config=None):
    graphs = tuple(
        DependencyGraph.from_log(read_csv(path, name=path.stem))
        for path in paths
    )
    return EMSEngine(config or EMSConfig()).similarity(*graphs)


@pytest.fixture()
def store(tmp_path):
    store = MatchStore(tmp_path / "cache" / "match.db")
    yield store
    store.close()


def assert_same_outcome(left, right):
    assert left.correspondences == right.correspondences
    assert left.objective == right.objective


class TestFullHit:
    def test_second_run_serves_the_matrix(self, tmp_path, store):
        paths = write_pair(tmp_path)
        first, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "computed"
        second, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store"
        assert provenance["log_names"] == ("a", "b")
        assert_same_outcome(first, second)
        assert_same_outcome(second, cold_outcome(paths))

    def test_served_matrix_is_bitwise_stored(self, tmp_path, store):
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        key = matrix_content_key(
            counts_content_key(file_digest(paths[0]), "csv", "raise"),
            counts_content_key(file_digest(paths[1]), "csv", "raise"),
            0.0,
            EMSConfig(),
        )
        record = store.get_matrix(key)
        assert record is not None
        restored = restore_result(record)
        expected = cold_matrix(paths)
        np.testing.assert_array_equal(
            restored.matrix.values, expected.matrix.values
        )

    def test_different_config_misses(self, tmp_path, store):
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        other = EMSMatcher(EMSConfig(alpha=0.7))
        _, provenance = match_stored(*paths, matcher=other, store=store)
        assert provenance["match_mode"] == "computed"

    def test_xes_pair_round_trips(self, tmp_path, store):
        csv_paths = write_pair(tmp_path)
        paths = []
        for path in csv_paths:
            log = read_csv(path, name=path.stem)
            xes_path = path.with_suffix(".xes")
            write_xes(log, xes_path)
            paths.append(xes_path)
        first, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "computed"
        second, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store"
        assert_same_outcome(first, second)


class TestPartialHit:
    def grow(self, path, rows):
        with open(path, "a") as handle:
            handle.writelines(f"{row}\n" for row in rows)

    def test_duplicated_traces_keep_frequencies(self, tmp_path, store):
        # Appending an exact copy of every trace under fresh case ids
        # doubles all counts and the trace total alike, so relative
        # frequencies — and the stored matrix — stay bitwise valid:
        # the dirty frontier is empty and nearly every pair is warm.
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        tail = paths[0].read_text().splitlines()[1:]
        self.grow(paths[0], ["grown-" + row for row in tail])
        outcome, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store-partial"
        assert provenance["ingest_modes"][0] == "store-append"
        assert provenance["pairs_warm"] > 0
        assert_same_outcome(outcome, cold_outcome(paths))

    def test_structural_growth_is_bit_identical(self, tmp_path, store):
        # Growth that shifts frequencies and adds a brand-new activity:
        # the warm start must still reproduce the cold answer exactly.
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        self.grow(
            paths[0],
            ["case-n1,p0", "case-n1,pNEW", "case-n2,pNEW", "case-n2,p3"],
        )
        outcome, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store-partial"
        assert_same_outcome(outcome, cold_outcome(paths))

    def test_partial_run_persists_the_new_pair(self, tmp_path, store):
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        tail = paths[0].read_text().splitlines()[1:]
        self.grow(paths[0], ["grown-" + row for row in tail])
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        _, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store"  # now a full hit
        # And the persisted matrix matches a cold computation bitwise.
        record = store.get_matrix(provenance["matrix_key"])
        np.testing.assert_array_equal(
            restore_result(record).matrix.values,
            cold_matrix(paths).matrix.values,
        )

    def test_both_sides_grown(self, tmp_path, store):
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        self.grow(paths[0], ["case-n1,p0", "case-n1,p1"])
        self.grow(paths[1], ["case-n1,q0", "case-n1,q2"])
        outcome, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store-partial"
        assert provenance["ingest_modes"] == ("store-append", "store-append")
        assert_same_outcome(outcome, cold_outcome(paths))

    def test_no_pruning_disables_partial(self, tmp_path, store):
        # Without Proposition-2 pruning a pair's final value depends on
        # the global stopping iteration, so carrying values over is not
        # sound — the route must fall back to a cold fixpoint.
        matcher = EMSMatcher(EMSConfig(use_pruning=False))
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=matcher, store=store)
        self.grow(paths[0], ["case-n1,p0", "case-n1,p1"])
        outcome, provenance = match_stored(*paths, matcher=matcher, store=store)
        assert provenance["match_mode"] == "computed"
        assert_same_outcome(outcome, cold_outcome(paths, EMSMatcher(matcher.config)))


class TestStoreGating:
    def test_budgeted_matcher_bypasses_matrix_store(self, tmp_path, store):
        paths = write_pair(tmp_path)
        budgeted = EMSMatcher(budget=MatchBudget(max_pair_updates=10**9))
        _, provenance = match_stored(*paths, matcher=budgeted, store=store)
        assert provenance["match_mode"] == "computed"
        assert store.get_matrix(provenance["matrix_key"]) is None  # not stored
        _, provenance = match_stored(*paths, matcher=budgeted, store=store)
        assert provenance["match_mode"] == "computed"  # and never served

    def test_estimated_result_is_not_persisted(self, tmp_path, store):
        paths = write_pair(tmp_path)
        estimating = EMSMatcher(EMSConfig(estimation_iterations=0))
        _, provenance = match_stored(*paths, matcher=estimating, store=store)
        assert store.get_matrix(provenance["matrix_key"]) is None

    def test_counts_and_graphs_still_memoized_under_budget(self, tmp_path, store):
        paths = write_pair(tmp_path)
        budgeted = EMSMatcher(budget=MatchBudget(max_pair_updates=10**9))
        match_stored(*paths, matcher=budgeted, store=store)
        _, provenance = match_stored(*paths, matcher=budgeted, store=store)
        assert provenance["ingest_modes"] == ("store", "store")


class TestCorruptionDegrades:
    def test_corrupt_matrix_row_computes_cold_same_answer(self, tmp_path, store):
        paths = write_pair(tmp_path)
        _, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        key = provenance["matrix_key"]
        # Flip a payload bit: the row digest rejects it at load time.
        connection = store._connection
        payload = connection.execute(
            "SELECT payload FROM matrices WHERE key = ?", (key,)
        ).fetchone()[0]
        connection.execute(
            "UPDATE matrices SET payload = ? WHERE key = ?",
            (payload[:-1] + bytes([payload[-1] ^ 0xFF]), key),
        )
        connection.commit()
        outcome, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "computed"  # degraded, not wrong
        assert_same_outcome(outcome, cold_outcome(paths))
        # The recompute healed the store: next run is a hit again.
        _, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store"

    def test_corrupt_trace_rows_fall_back_to_counts(self, tmp_path, store):
        paths = write_pair(tmp_path)
        match_stored(*paths, matcher=EMSMatcher(), store=store)
        # Delete half of one log's trace rows: the SQL aggregation's
        # trace count disagrees with the counts row and is discarded;
        # the counts blob still answers, bit-identically.
        ck = counts_content_key(file_digest(paths[0]), "csv", "raise")
        store._execute(
            "DELETE FROM events WHERE key = ? AND trace_id < 10", (ck,)
        )
        store._commit()
        outcome, provenance = match_stored(*paths, matcher=EMSMatcher(), store=store)
        assert provenance["match_mode"] == "store"
        assert_same_outcome(outcome, cold_outcome(paths))
