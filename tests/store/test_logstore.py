"""LogStore durability: verified rows, corruption quarantine, LRU bound."""

import sqlite3

import pytest

from repro.exceptions import StoreError
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.obs import MetricsRegistry, Observer
from repro.store.logstore import (
    LogStore,
    case_digest,
    counts_content_key,
    file_digest,
    graph_content_key,
    ingest_key,
)


def record(trace_count=3, name="demo"):
    return {
        "trace_count": trace_count,
        "activity_counts": {"a": trace_count},
        "pair_counts": {("a", "b"): 1},
        "case_digests": [case_digest("c0")],
        "log_name": name,
    }


@pytest.fixture()
def store(tmp_path):
    store = LogStore(tmp_path / "store.db")
    yield store
    store.close()


class TestKeys:
    def test_file_digest_streams_and_limits(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"abcdef")
        assert file_digest(path) == file_digest(path)
        assert file_digest(path, limit=3) != file_digest(path)
        prefix = tmp_path / "prefix.bin"
        prefix.write_bytes(b"abc")
        assert file_digest(path, limit=3) == file_digest(prefix)

    def test_case_digest_distinguishes_none_from_strings(self):
        assert case_digest(None) != case_digest("")
        assert case_digest("c0") != case_digest("c1")
        assert len(case_digest("c0")) == 8

    def test_counts_key_sensitive_to_every_input(self):
        base = counts_content_key("d", "csv", "raise")
        assert counts_content_key("e", "csv", "raise") != base
        assert counts_content_key("d", "xes", "raise") != base
        assert counts_content_key("d", "csv", "repair") != base

    def test_graph_key_sensitive_to_threshold(self):
        assert graph_content_key("k", 0.0) != graph_content_key("k", 0.5)
        assert graph_content_key("k", 0.5) == graph_content_key("k", 0.5)

    def test_ingest_key_resolves_path(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("case_id,activity,timestamp\n")
        dotted = tmp_path / "sub" / ".." / "log.csv"
        assert ingest_key(path, "csv", "raise") == ingest_key(dotted, "csv", "raise")


class TestRoundTrips:
    def test_counts_round_trip_and_counters(self, store):
        key = counts_content_key("digest", "csv", "raise")
        assert store.get_counts(key) is None
        store.put_counts(key, record())
        value = store.get_counts(key)
        assert value["trace_count"] == 3
        assert value["pair_counts"] == {("a", "b"): 1}
        assert (store.hits, store.misses) == (1, 1)

    def test_graph_round_trip(self, store):
        graph = DependencyGraph.from_log(EventLog([["a", "b"], ["a", "c"]], name="g"))
        key = graph_content_key("counts", 0.0)
        assert store.get_graph(key) is None
        store.put_graph(key, graph)
        restored = store.get_graph(key)
        assert restored.nodes == graph.nodes
        assert restored.real_edges == graph.real_edges

    def test_ingest_round_trip(self, store, tmp_path):
        key = ingest_key(tmp_path / "log.csv", "csv", "raise")
        assert store.get_ingest(key) is None
        store.put_ingest(key, 120, "prefix", "case_id,activity,timestamp\n", "ck")
        row = store.get_ingest(key)
        assert row == {
            "byte_count": 120,
            "prefix_digest": "prefix",
            "header": "case_id,activity,timestamp\n",
            "counts_key": "ck",
        }

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        first = LogStore(path)
        first.put_counts("k", record())
        first.close()
        second = LogStore(path)
        assert second.get_counts("k")["trace_count"] == 3
        second.close()


class TestCorruption:
    def test_bitflipped_row_is_deleted_and_missed(self, store, tmp_path):
        registry = MetricsRegistry()
        store.observer = Observer(metrics=registry)
        store.put_counts("k", record())
        connection = sqlite3.connect(store.path)
        connection.execute(
            "UPDATE counts SET payload = X'deadbeef' WHERE key = 'k'"
        )
        connection.commit()
        connection.close()
        assert store.get_counts("k") is None
        text = registry.to_prometheus_text()
        assert "store_corrupt_total 1" in text
        assert "store_misses_total 1" in text
        # The bad row is gone for good, not re-verified on every lookup.
        cursor = store._execute("SELECT COUNT(*) FROM counts")
        assert cursor.fetchone()[0] == 0

    def test_wrong_shape_counts_treated_as_corrupt(self, store):
        store._put("counts", "k", {"trace_count": 1})  # missing required keys
        assert store.get_counts("k") is None
        assert store.get_counts("k") is None  # deleted, plain miss now

    def test_wrong_type_graph_treated_as_corrupt(self, store):
        store._put("graphs", "k", {"not": "a graph"})
        assert store.get_graph("k") is None

    def test_garbage_database_set_aside_and_recreated(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_bytes(b"this is not a sqlite database at all\x00\x01")
        store = LogStore(path)
        try:
            assert store.get_counts("k") is None
            store.put_counts("k", record())
            assert store.get_counts("k")["trace_count"] == 3
            assert path.with_name("store.db.corrupt").exists()
        finally:
            store.close()

    def test_schema_version_mismatch_rebuilds(self, tmp_path):
        path = tmp_path / "store.db"
        connection = sqlite3.connect(path)
        connection.execute("PRAGMA user_version = 99")
        connection.execute("CREATE TABLE counts (key TEXT PRIMARY KEY)")
        connection.commit()
        connection.close()
        store = LogStore(path)
        try:
            assert store.get_counts("k") is None
            store.put_counts("k", record())
            assert store.get_counts("k") is not None
        finally:
            store.close()


class TestEviction:
    def test_lru_bound_drops_oldest(self, tmp_path):
        registry = MetricsRegistry()
        store = LogStore(
            tmp_path / "store.db", max_entries=3,
            observer=Observer(metrics=registry),
        )
        try:
            for i in range(3):
                store.put_counts(f"k{i}", record(trace_count=i + 1))
            store.get_counts("k0")  # touch: k0 becomes most recent
            store.put_counts("k3", record(trace_count=9))
            assert store.get_counts("k0") is not None
            assert store.get_counts("k1") is None  # the true LRU victim
            assert store.get_counts("k3") is not None
            assert "store_evictions_total 1" in registry.to_prometheus_text()
        finally:
            store.close()

    def test_unbounded_store_keeps_everything(self, tmp_path):
        store = LogStore(tmp_path / "store.db", max_entries=None)
        try:
            for i in range(20):
                store.put_counts(f"k{i}", record())
            assert all(store.get_counts(f"k{i}") for i in range(20))
        finally:
            store.close()

    def test_invalid_max_entries_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="max_entries"):
            LogStore(tmp_path / "store.db", max_entries=0)

    def test_tables_evict_independently(self, tmp_path):
        store = LogStore(tmp_path / "store.db", max_entries=2)
        try:
            graph = DependencyGraph.from_log(EventLog([["a", "b"]], name="g"))
            for i in range(2):
                store.put_counts(f"c{i}", record())
                store.put_graph(f"g{i}", graph)
            assert all(store.get_counts(f"c{i}") for i in range(2))
            assert all(store.get_graph(f"g{i}") for i in range(2))
        finally:
            store.close()


def _hammer_store(path, worker_id, rounds, barrier):
    """Child-process body: interleaved writes/reads on one shared key."""
    store = LogStore(path, max_entries=None)
    try:
        barrier.wait(timeout=30)
        for i in range(rounds):
            store.put_counts("shared", record(trace_count=worker_id + 1))
            store.get_counts("shared")
            store.put_counts(f"w{worker_id}-{i}", record())
    finally:
        store.close()


class TestConcurrentAccess:
    def test_two_writers_never_corrupt_the_database(self, tmp_path):
        # WAL mode + busy-timeout + the lock-retry loop in _execute:
        # concurrent writers serialize on the SQLite lock instead of
        # tripping the corruption quarantine (a transient "database is
        # locked" must NEVER set a shared database aside).
        import multiprocessing

        context = multiprocessing.get_context("fork")
        path = tmp_path / "store.db"
        LogStore(path).close()  # create the schema up front
        barrier = context.Barrier(2)
        workers = [
            context.Process(
                target=_hammer_store, args=(path, worker_id, 25, barrier)
            )
            for worker_id in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        # No set-aside happened and every row is intact.
        assert not path.with_name("store.db.corrupt").exists()
        store = LogStore(path)
        try:
            shared = store.get_counts("shared")
            assert shared is not None
            assert shared["trace_count"] in (1, 2)  # one writer's value
            for worker_id in range(2):
                for i in range(25):
                    assert store.get_counts(f"w{worker_id}-{i}") is not None
        finally:
            store.close()

    def test_threads_sharing_one_store_object(self, tmp_path):
        # The serve daemon answers from a thread pool sharing one store
        # object: check_same_thread=False plus the internal RLock must
        # keep whole get/put sequences atomic across threads.
        import threading

        path = tmp_path / "store.db"
        store = LogStore(path, max_entries=None)
        barrier = threading.Barrier(4)
        failures: list[BaseException] = []

        def hammer(worker_id):
            try:
                barrier.wait(timeout=30)
                for i in range(25):
                    store.put_counts("shared", record(trace_count=worker_id + 1))
                    assert store.get_counts("shared") is not None
                    store.put_counts(f"t{worker_id}-{i}", record())
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker_id,))
            for worker_id in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not failures
        assert not path.with_name("store.db.corrupt").exists()
        try:
            shared = store.get_counts("shared")
            assert shared is not None
            assert shared["trace_count"] in (1, 2, 3, 4)
            for worker_id in range(4):
                for i in range(25):
                    assert store.get_counts(f"t{worker_id}-{i}") is not None
        finally:
            store.close()

    def test_threads_with_per_thread_stores_on_one_path(self, tmp_path):
        # The two-process hammer, re-run with threads and one store
        # object per thread: WAL + busy-timeout + lock-retry serialize
        # the writers exactly as they do across processes.
        import threading

        path = tmp_path / "store.db"
        LogStore(path).close()  # create the schema up front
        barrier = threading.Barrier(2)
        failures: list[BaseException] = []

        def hammer(worker_id):
            try:
                _hammer_store(path, worker_id, 25, barrier)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker_id,))
            for worker_id in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not failures
        assert not path.with_name("store.db.corrupt").exists()
        store = LogStore(path)
        try:
            shared = store.get_counts("shared")
            assert shared is not None
            assert shared["trace_count"] in (1, 2)
            for worker_id in range(2):
                for i in range(25):
                    assert store.get_counts(f"w{worker_id}-{i}") is not None
        finally:
            store.close()
