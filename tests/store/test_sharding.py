"""Sharded ingestion: streaming equivalence, fan-out, quarantine-to-error."""

import random

import pytest

from repro.exceptions import LogFormatError, ShardIngestionError
from repro.logs.csvio import read_csv, write_csv
from repro.logs.stats import compute_statistics
from repro.logs.xes import write_xes
from repro.runtime.report import IngestionReport
from repro.runtime.supervise import RetryPolicy
from repro.store.blocks import iter_block
from repro.store.sharding import (
    partition_csv,
    resolve_format,
    shard_statistics,
    spill_blocks,
    stream_traces,
)


@pytest.fixture()
def interleaved_csv(tmp_path):
    """A CSV whose cases interleave heavily — the hard case for streaming."""
    rng = random.Random(11)
    activities = [f"step-{i}" for i in range(9)]
    cases = {
        f"case-{i}": [rng.choice(activities) for _ in range(rng.randint(1, 7))]
        for i in range(35)
    }
    queue = [
        (case_id, position, activity)
        for case_id, sequence in cases.items()
        for position, activity in enumerate(sequence)
    ]
    rng.shuffle(queue)
    queue.sort(key=lambda entry: entry[1])  # interleave, keep per-case order
    rows = ["case_id,activity,timestamp"]
    rows += [f"{c},{a},{p}.0" for c, p, a in queue]
    path = tmp_path / "interleaved.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


def batch_stats(path, fmt="csv"):
    return compute_statistics(read_csv(path, name=path.stem))


class TestResolveFormat:
    def test_auto_by_suffix(self, tmp_path):
        assert resolve_format(tmp_path / "x.xes") == "xes"
        assert resolve_format(tmp_path / "x.CSV") == "csv"

    def test_unknown_suffix_raises(self, tmp_path):
        with pytest.raises(LogFormatError, match="cannot infer"):
            resolve_format(tmp_path / "x.parquet")

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(LogFormatError, match="unknown format"):
            resolve_format(tmp_path / "x.csv", "arrow")


class TestCsvPartitioning:
    def test_cases_never_split_across_partitions(self, interleaved_csv, tmp_path):
        paths = partition_csv(interleaved_csv, tmp_path / "spill", partitions=8)
        seen: dict[str, int] = {}
        for index, path in enumerate(paths):
            with open(path) as handle:
                next(handle)  # header
                for line in handle:
                    case_id = line.split(",", 1)[0]
                    assert seen.setdefault(case_id, index) == index
        assert len(seen) == 35

    def test_partitioned_stream_matches_batch(self, interleaved_csv, tmp_path):
        from repro.logs.streaming import OnlineStatistics

        stats = OnlineStatistics()
        for _, activities in stream_traces(
            interleaved_csv, spill_dir=tmp_path / "spill"
        ):
            stats.add_sequence(activities)
        assert stats.snapshot() == batch_stats(interleaved_csv)

    def test_report_accounting_matches_batch_totals(self, interleaved_csv, tmp_path):
        batch_report = IngestionReport(mode="raise")
        read_csv(interleaved_csv, on_error="raise", report=batch_report)
        stream_report = IngestionReport(mode="raise")
        list(
            stream_traces(
                interleaved_csv, on_error="raise", report=stream_report,
                spill_dir=tmp_path / "spill",
            )
        )
        assert stream_report.rows_seen == batch_report.rows_seen
        assert stream_report.events_loaded == batch_report.events_loaded

    def test_bad_rows_rejected_with_same_counts(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text(
            "case_id,activity,timestamp\n"
            "c1,a,1.0\n"
            ",missing-case,2.0\n"       # empty case id
            "c2,,3.0\n"                  # empty activity
            "c1,b,oops\n"                # bad timestamp
            "c3,d,4.0\n"
        )
        batch_report = IngestionReport(mode="repair")
        batch = read_csv(path, on_error="repair", report=batch_report)
        stream_report = IngestionReport(mode="repair")
        from repro.logs.streaming import OnlineStatistics

        stats = OnlineStatistics()
        for _, activities in stream_traces(
            path, on_error="repair", report=stream_report,
            spill_dir=tmp_path / "spill",
        ):
            stats.add_sequence(activities)
        assert stats.snapshot() == compute_statistics(batch)
        assert stream_report.rows_dropped == batch_report.rows_dropped
        assert stream_report.rows_repaired == batch_report.rows_repaired
        assert stream_report.rows_seen == batch_report.rows_seen

    def test_missing_header_raises_before_spill(self, tmp_path):
        path = tmp_path / "headerless.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(LogFormatError, match="header"):
            partition_csv(path, tmp_path / "spill")
        assert not (tmp_path / "spill").exists() or not list(
            (tmp_path / "spill").glob("part-*.csv")
        )

    def test_csv_stream_requires_spill_dir(self, interleaved_csv):
        with pytest.raises(ValueError, match="spill_dir"):
            stream_traces(interleaved_csv)


class TestXesStreaming:
    def test_xes_stream_matches_batch(self, interleaved_csv, tmp_path):
        log = read_csv(interleaved_csv, name="demo")
        xes_path = tmp_path / "demo.xes"
        write_xes(log, xes_path)
        pairs = list(stream_traces(xes_path))
        assert [case_id for case_id, _ in pairs] == [t.case_id for t in log]
        from repro.logs.streaming import OnlineStatistics

        stats = OnlineStatistics()
        for _, activities in pairs:
            stats.add_sequence(activities)
        assert stats.snapshot() == compute_statistics(log)

    def test_name_sink_sees_xes_log_name(self, tmp_path):
        from repro.logs.log import EventLog

        log = EventLog([["a", "b"]], name="tickets")
        path = tmp_path / "t.xes"
        write_xes(log, path)
        names = []
        list(stream_traces(path, name_sink=names.append))
        assert names[-1] == "tickets"


class TestShardStatistics:
    def blocks_for(self, path, tmp_path, block_traces=5):
        traces = stream_traces(path, spill_dir=tmp_path / "spill")
        return spill_blocks(traces, tmp_path / "blocks", block_traces=block_traces)

    def test_serial_matches_batch(self, interleaved_csv, tmp_path):
        blocks = self.blocks_for(interleaved_csv, tmp_path)
        assert len(blocks) > 1
        stats = shard_statistics(blocks)
        assert stats.snapshot() == batch_stats(interleaved_csv)

    def test_parallel_matches_batch(self, interleaved_csv, tmp_path):
        blocks = self.blocks_for(interleaved_csv, tmp_path, block_traces=4)
        stats = shard_statistics(blocks, workers=2)
        assert stats.snapshot() == batch_stats(interleaved_csv)

    def test_parallel_equals_serial_bitwise(self, interleaved_csv, tmp_path):
        blocks = self.blocks_for(interleaved_csv, tmp_path)
        serial = shard_statistics(blocks).snapshot()
        parallel = shard_statistics(blocks, workers=2).snapshot()
        assert serial == parallel
        assert serial.activity_frequencies == parallel.activity_frequencies

    def test_corrupt_block_raises_not_biases_serial(self, interleaved_csv, tmp_path):
        blocks = self.blocks_for(interleaved_csv, tmp_path)
        blocks[1].write_text('["oops"\n')
        with pytest.raises(LogFormatError):
            shard_statistics(blocks)

    def test_corrupt_block_raises_not_biases_parallel(self, interleaved_csv, tmp_path):
        """A shard the supervisor gives up on aborts the whole ingestion
        (quarantine-and-skip would silently bias every frequency)."""
        blocks = self.blocks_for(interleaved_csv, tmp_path)
        blocks[1].write_text('["oops"\n')
        policy = RetryPolicy(max_attempts=1, base_delay=0.0)
        with pytest.raises(ShardIngestionError) as info:
            shard_statistics(blocks, workers=2, policy=policy)
        assert info.value.shard == blocks[1].name

    def test_empty_block_list(self):
        stats = shard_statistics([])
        assert stats.trace_count == 0

    def test_shard_counter_flows_to_metrics(self, interleaved_csv, tmp_path):
        from repro.obs import MetricsRegistry, Observer

        registry = MetricsRegistry()
        blocks = self.blocks_for(interleaved_csv, tmp_path)
        shard_statistics(blocks, observer=Observer(metrics=registry))
        text = registry.to_prometheus_text()
        assert "ingest_shards_total" in text
        assert f"ingest_shards_total {len(blocks)}" in text


class TestBlockSpill:
    def test_spill_preserves_order_and_content(self, interleaved_csv, tmp_path):
        pairs = list(stream_traces(interleaved_csv, spill_dir=tmp_path / "spill"))
        blocks = spill_blocks(iter(pairs), tmp_path / "blocks", block_traces=6)
        restored = [pair for block in blocks for pair in iter_block(block)]
        assert restored == pairs
