"""MatchStore: matrix persistence, SQL push-down, corruption contract."""

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics
from repro.obs import MetricsRegistry, Observer
from repro.store.matchstore import (
    MatchStore,
    matrix_content_key,
    matrix_record,
    restore_result,
)


def make_logs():
    first = EventLog(
        [["a", "b", "c"], ["a", "c"], ["a", "b", "b", "c"]], name="first"
    )
    second = EventLog(
        [["x", "y", "z"], ["x", "z"], ["x", "y", "z", "z"]], name="second"
    )
    return first, second


def make_result(config=None):
    first, second = make_logs()
    graphs = (DependencyGraph.from_log(first), DependencyGraph.from_log(second))
    return EMSEngine(config or EMSConfig()).similarity(*graphs)


@pytest.fixture()
def store(tmp_path):
    store = MatchStore(tmp_path / "match.db")
    yield store
    store.close()


class TestMatrixKey:
    def test_deterministic(self):
        config = EMSConfig()
        assert matrix_content_key("c1", "c2", 0.0, config) == matrix_content_key(
            "c1", "c2", 0.0, config
        )

    def test_sensitive_to_each_input(self):
        config = EMSConfig()
        base = matrix_content_key("c1", "c2", 0.0, config)
        assert matrix_content_key("cX", "c2", 0.0, config) != base
        assert matrix_content_key("c1", "cX", 0.0, config) != base
        assert matrix_content_key("c1", "c2", 0.2, config) != base
        assert matrix_content_key("c1", "c2", 0.0, config, "labels") != base

    def test_order_of_logs_matters(self):
        config = EMSConfig()
        assert matrix_content_key("c1", "c2", 0.0, config) != matrix_content_key(
            "c2", "c1", 0.0, config
        )

    @pytest.mark.parametrize(
        "knob",
        [
            {"alpha": 0.7},
            {"c": 0.5},
            {"epsilon": 1e-6},
            {"max_iterations": 7},
            {"direction": "forward"},
            {"use_pruning": False},
            {"estimation_iterations": 3},
            {"kernel": "sparse"},
            {"dtype": "float32"},
        ],
    )
    def test_sensitive_to_config_knobs(self, knob):
        base = matrix_content_key("c1", "c2", 0.0, EMSConfig())
        assert matrix_content_key("c1", "c2", 0.0, EMSConfig(**knob)) != base

    def test_threshold_free_knobs_do_not_key(self):
        # incremental/screening/best_first only steer the composite
        # search, never the similarity values — same key.
        base = matrix_content_key("c1", "c2", 0.0, EMSConfig())
        assert matrix_content_key(
            "c1", "c2", 0.0, EMSConfig(incremental=False, screening=False)
        ) == base


class TestMatrixRoundTrip:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_bitwise_round_trip(self, store, dtype):
        config = EMSConfig(dtype=dtype)
        result = make_result(config)
        record = matrix_record(result, config, ("first", "second"))
        store.put_matrix("k", record)
        loaded = store.get_matrix("k")
        assert loaded is not None
        restored = restore_result(loaded)
        assert restored.matrix.rows == result.matrix.rows
        assert restored.matrix.cols == result.matrix.cols
        np.testing.assert_array_equal(
            restored.matrix.values, result.matrix.values
        )
        for name, matrix in result.directional.items():
            np.testing.assert_array_equal(
                restored.directional[name].values, matrix.values
            )
        assert restored.iterations == result.iterations
        assert restored.converged == result.converged

    def test_float32_storage_is_compact(self, store):
        config32 = EMSConfig(dtype="float32")
        record = matrix_record(make_result(config32), config32, ("a", "b"))
        for sub in record["directional"].values():
            assert sub["values"].dtype == np.float32

    def test_hit_and_miss_counters(self, tmp_path):
        registry = MetricsRegistry()
        store = MatchStore(
            tmp_path / "match.db", observer=Observer(metrics=registry)
        )
        try:
            assert store.get_matrix("absent") is None
            config = EMSConfig()
            store.put_matrix(
                "k", matrix_record(make_result(), config, ("a", "b"))
            )
            assert store.get_matrix("k") is not None
            text = registry.to_prometheus_text()
            assert "match_store_misses_total 1" in text
            assert "match_store_hits_total 1" in text
        finally:
            store.close()


class TestCorruptMatrixDegrades:
    def put_valid(self, store, key="k"):
        config = EMSConfig()
        store.put_matrix(key, matrix_record(make_result(), config, ("a", "b")))

    def test_malformed_record_is_a_counted_miss(self, tmp_path):
        registry = MetricsRegistry()
        store = MatchStore(
            tmp_path / "match.db", observer=Observer(metrics=registry)
        )
        try:
            store.put_matrix("k", {"not": "a matrix record"})
            assert store.get_matrix("k") is None
            text = registry.to_prometheus_text()
            assert "match_store_corrupt_total 1" in text
            assert "match_store_misses_total 1" in text
            # The poisoned row is gone: the next lookup is a plain miss.
            assert store.get_matrix("k") is None
        finally:
            store.close()

    def test_wrong_shape_directional_rejected(self, store):
        self.put_valid(store)
        record = store.get_matrix("k")
        record["directional"] = {
            name: {**sub, "values": sub["values"][:1]}
            for name, sub in record["directional"].items()
        }
        store.put_matrix("bad", record)
        assert store.get_matrix("bad") is None

    def test_flipped_bit_fails_row_digest(self, tmp_path):
        # Reuses the logstore per-row sha256: corrupt payload bytes are
        # rejected before deserialization even starts — and counted in
        # the matrix quartet, not only the generic store counter.
        registry = MetricsRegistry()
        store = MatchStore(
            tmp_path / "match.db", observer=Observer(metrics=registry)
        )
        try:
            self.put_valid(store)
            connection = store._connection
            payload = connection.execute(
                "SELECT payload FROM matrices WHERE key = 'k'"
            ).fetchone()[0]
            connection.execute(
                "UPDATE matrices SET payload = ? WHERE key = 'k'",
                (payload[:-1] + bytes([payload[-1] ^ 0xFF]),),
            )
            connection.commit()
            assert store.get_matrix("k") is None
            assert "match_store_corrupt_total 1" in registry.to_prometheus_text()
        finally:
            store.close()


class TestSqlStatistics:
    def insert_log(self, store, key, log):
        rows = [
            (key, index, pos, activity)
            for index, trace in enumerate(log)
            for pos, activity in enumerate(trace.activities)
        ]
        store.insert_event_rows(rows)
        store._commit()

    def test_parity_with_python_counting(self, store):
        first, _ = make_logs()
        self.insert_log(store, "k", first)
        stats = store.sql_statistics("k")
        assert stats is not None
        assert stats.snapshot() == compute_statistics(first)

    def test_distinct_per_trace_semantics(self, store):
        # "b b" repeats inside one trace: Definition 1 counts traces
        # containing the activity/pair, not occurrences.
        log = EventLog([["a", "b", "b"], ["a"]], name="dup")
        self.insert_log(store, "k", log)
        stats = store.sql_statistics("k")
        assert stats.activity_counts["b"] == 1
        assert stats.pair_counts[("a", "b")] == 1
        assert stats.pair_counts[("b", "b")] == 1

    def test_no_rows_is_none(self, store):
        assert store.sql_statistics("absent") is None

    def test_trace_count_mismatch_drops_rows(self, tmp_path):
        registry = MetricsRegistry()
        store = MatchStore(
            tmp_path / "match.db", observer=Observer(metrics=registry)
        )
        try:
            first, _ = make_logs()
            self.insert_log(store, "k", first)
            assert store.sql_statistics("k", expected_traces=99) is None
            assert "store_corrupt_total 1" in registry.to_prometheus_text()
            assert store.stored_trace_count("k") == 0  # rows were dropped
        finally:
            store.close()

    def test_rekey_moves_rows(self, store):
        first, _ = make_logs()
        self.insert_log(store, "old", first)
        store.rekey_trace_rows("old", "new")
        store._commit()
        assert store.stored_trace_count("old") == 0
        assert store.sql_statistics("new").snapshot() == compute_statistics(first)


class TestEvictionCascade:
    def counts_record(self, i):
        return {
            "trace_count": 1,
            "activity_counts": {"a": 1},
            "pair_counts": {},
            "case_digests": [],
            "log_name": f"log-{i}",
        }

    def test_counts_eviction_drops_trace_rows(self, tmp_path):
        store = MatchStore(tmp_path / "match.db", max_entries=2)
        try:
            for i in range(2):
                store.put_counts(f"k{i}", self.counts_record(i))
                store.insert_event_rows([(f"k{i}", 0, 0, "a")])
                store._commit()
            store.put_counts("k2", self.counts_record(2))
            assert store.get_counts("k0") is None  # evicted
            assert store.stored_trace_count("k0") == 0  # rows cascaded
            assert store.stored_trace_count("k1") == 1
        finally:
            store.close()

    def test_matrix_eviction_counts_separately(self, tmp_path):
        registry = MetricsRegistry()
        store = MatchStore(
            tmp_path / "match.db", max_entries=1,
            observer=Observer(metrics=registry),
        )
        try:
            config = EMSConfig()
            record = matrix_record(make_result(), config, ("a", "b"))
            store.put_matrix("m0", record)
            store.put_matrix("m1", record)
            assert store.get_matrix("m0") is None
            assert "match_store_evictions_total 1" in registry.to_prometheus_text()
        finally:
            store.close()


class TestInteroperability:
    def test_logstore_database_opens_as_matchstore(self, tmp_path):
        from repro.store.logstore import LogStore

        path = tmp_path / "store.db"
        plain = LogStore(path)
        plain.put_counts("k", TestEvictionCascade().counts_record(0))
        plain.close()
        upgraded = MatchStore(path)
        try:
            assert upgraded.get_counts("k") is not None
            assert upgraded.get_matrix("m") is None  # table created lazily
        finally:
            upgraded.close()
