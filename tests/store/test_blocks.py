"""Spill-block format: bounded writes, faithful round-trips, loud corruption."""

import json

import pytest

from repro.exceptions import LogFormatError
from repro.store.blocks import TraceBlockWriter, iter_block


def spill(tmp_path, traces, block_traces=3):
    writer = TraceBlockWriter(tmp_path / "blocks", block_traces=block_traces)
    for case_id, activities in traces:
        writer.add(case_id, activities)
    return writer.finish()


class TestWriter:
    def test_round_trip(self, tmp_path):
        traces = [("c0", ("a", "b")), (None, ("b",)), ("c2", ("c", "a", "c"))]
        paths = spill(tmp_path, traces, block_traces=2)
        restored = [pair for path in paths for pair in iter_block(path)]
        assert restored == [("c0", ("a", "b")), (None, ("b",)), ("c2", ("c", "a", "c"))]

    def test_block_size_bounds_each_file(self, tmp_path):
        traces = [(f"c{i}", ("a",)) for i in range(10)]
        paths = spill(tmp_path, traces, block_traces=4)
        assert len(paths) == 3  # 4 + 4 + 2
        sizes = [sum(1 for _ in iter_block(path)) for path in paths]
        assert sizes == [4, 4, 2]

    def test_empty_stream_spills_nothing(self, tmp_path):
        assert spill(tmp_path, []) == []

    def test_finish_is_idempotent(self, tmp_path):
        writer = TraceBlockWriter(tmp_path / "blocks", block_traces=2)
        writer.add("c0", ("a",))
        assert writer.finish() == writer.finish()

    def test_add_after_finish_rejected(self, tmp_path):
        writer = TraceBlockWriter(tmp_path / "blocks")
        writer.finish()
        with pytest.raises(ValueError):
            writer.add("c0", ("a",))

    def test_invalid_block_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TraceBlockWriter(tmp_path, block_traces=0)

    def test_unicode_survives(self, tmp_path):
        traces = [("fall-7", ("Prüfung", "支付", "ütf"))]
        (path,) = spill(tmp_path, traces)
        assert list(iter_block(path)) == [("fall-7", ("Prüfung", "支付", "ütf"))]


class TestCorruption:
    """A damaged block must fail the shard loudly — partial counts would
    silently bias every statistic downstream."""

    def test_torn_line_raises(self, tmp_path):
        (path,) = spill(tmp_path, [("c0", ("a",)), ("c1", ("b",))])
        data = path.read_text()
        path.write_text(data[:-4])  # tear the final record mid-line
        with pytest.raises(LogFormatError, match="corrupt trace block"):
            list(iter_block(path))

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "block-000000.jsonl"
        path.write_text(json.dumps({"not": "a trace"}) + "\n")
        with pytest.raises(LogFormatError, match="corrupt trace block"):
            list(iter_block(path))

    def test_non_string_activities_raise(self, tmp_path):
        path = tmp_path / "block-000000.jsonl"
        path.write_text('["c0", ["a", 3]]\n')
        with pytest.raises(LogFormatError, match="list of strings"):
            list(iter_block(path))

    def test_non_string_case_id_raises(self, tmp_path):
        path = tmp_path / "block-000000.jsonl"
        path.write_text('[42, ["a"]]\n')
        with pytest.raises(LogFormatError, match="case id"):
            list(iter_block(path))

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "block-000000.jsonl"
        path.write_text('["c0", ["a"]]\n\n["c1", ["b"]]\n')
        assert len(list(iter_block(path))) == 2
