"""Ingestion pipeline: every route yields the batch answer, bit for bit."""

import random

import pytest

from repro.graph.dependency import DependencyGraph
from repro.logs.csvio import read_csv
from repro.logs.stats import compute_statistics
from repro.logs.xes import read_xes, write_xes
from repro.runtime.report import IngestionReport
from repro.store import LogStore, ingest_graph, ingest_statistics


@pytest.fixture()
def csv_log(tmp_path):
    rng = random.Random(5)
    rows = ["case_id,activity,timestamp"]
    for i in range(30):
        for position in range(rng.randint(1, 6)):
            rows.append(f"case-{i},act-{rng.randint(0, 7)},{position}.0")
    path = tmp_path / "events.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


@pytest.fixture()
def store(tmp_path):
    store = LogStore(tmp_path / "cache" / "store.db")
    yield store
    store.close()


def batch(path):
    log = read_csv(path, name=path.stem) if path.suffix == ".csv" else read_xes(path)
    return compute_statistics(log)


class TestRouteEquivalence:
    def test_streamed_matches_batch(self, csv_log):
        result = ingest_statistics(csv_log)
        assert result.mode == "streamed"
        assert result.statistics == batch(csv_log)
        assert result.log_name == "events"

    def test_sharded_matches_batch(self, csv_log):
        result = ingest_statistics(csv_log, shard_traces=7)
        assert result.mode == "sharded"
        assert result.shards > 1
        assert result.statistics == batch(csv_log)

    def test_parallel_sharded_matches_batch(self, csv_log):
        result = ingest_statistics(csv_log, shard_traces=7, workers=2)
        assert result.mode == "sharded"
        assert result.statistics == batch(csv_log)

    def test_xes_routes_match_batch(self, csv_log, tmp_path):
        log = read_csv(csv_log, name="handover")
        xes_path = tmp_path / "handover.xes"
        write_xes(log, xes_path)
        expected = compute_statistics(log)
        streamed = ingest_statistics(xes_path)
        sharded = ingest_statistics(xes_path, shard_traces=4)
        assert streamed.statistics == expected
        assert sharded.statistics == expected
        assert streamed.log_name == "handover"

    def test_frequencies_bit_identical_across_routes(self, csv_log):
        reference = ingest_statistics(csv_log).statistics
        for result in (
            ingest_statistics(csv_log, shard_traces=3),
            ingest_statistics(csv_log, shard_traces=100),
            ingest_statistics(csv_log, shard_traces=5, workers=2),
        ):
            assert result.statistics.activity_frequencies == (
                reference.activity_frequencies
            )
            assert result.statistics.pair_frequencies == (
                reference.pair_frequencies
            )

    def test_invalid_shard_traces_rejected(self, csv_log):
        with pytest.raises(ValueError, match="shard_traces"):
            ingest_statistics(csv_log, shard_traces=0)


class TestStoreRoute:
    def test_second_ingest_served_from_store(self, csv_log, store):
        cold = ingest_statistics(csv_log, store=store)
        assert cold.mode == "streamed"
        warm = ingest_statistics(csv_log, store=store)
        assert warm.mode == "store"
        assert warm.statistics == cold.statistics
        assert warm.log_name == cold.log_name
        assert store.hits >= 1

    def test_store_hit_skips_parsing(self, csv_log, store):
        ingest_statistics(csv_log, store=store)
        report = IngestionReport(mode="raise")
        result = ingest_statistics(csv_log, store=store, report=report)
        assert result.mode == "store"
        assert report.rows_seen == 0  # nothing was parsed

    def test_changed_content_invalidates(self, csv_log, store):
        ingest_statistics(csv_log, store=store)
        text = csv_log.read_text()
        # Rewrite an existing row: not an append, a different log.
        csv_log.write_text(text.replace("act-0", "act-9", 1))
        result = ingest_statistics(csv_log, store=store)
        assert result.mode in ("streamed", "sharded")
        assert result.statistics == batch(csv_log)

    def test_mode_and_threshold_key_separately(self, csv_log, store):
        raise_key = ingest_statistics(csv_log, store=store).counts_key
        repair_key = ingest_statistics(
            csv_log, on_error="repair", store=store
        ).counts_key
        assert raise_key != repair_key

    def test_store_survives_sharded_route(self, csv_log, store):
        cold = ingest_statistics(csv_log, shard_traces=4, store=store)
        assert cold.mode == "sharded"
        warm = ingest_statistics(csv_log, shard_traces=4, store=store)
        assert warm.mode == "store"
        assert warm.statistics == cold.statistics


class TestAppendFastPath:
    def append_rows(self, path, rows):
        with open(path, "a") as handle:
            handle.writelines(f"{row}\n" for row in rows)

    def test_disjoint_append_merges_tail(self, csv_log, store):
        ingest_statistics(csv_log, store=store)
        self.append_rows(
            csv_log,
            ["case-new-1,act-0,0.0", "case-new-1,act-1,1.0", "case-new-2,act-2,0.0"],
        )
        result = ingest_statistics(csv_log, store=store)
        assert result.mode == "store-append"
        assert result.statistics == batch(csv_log)

    def test_append_report_covers_only_tail(self, csv_log, store):
        ingest_statistics(csv_log, store=store)
        self.append_rows(csv_log, ["case-new-1,act-0,0.0"])
        report = IngestionReport(mode="raise")
        result = ingest_statistics(csv_log, store=store, report=report)
        assert result.mode == "store-append"
        assert report.events_loaded == 1

    def test_overlapping_case_falls_back_cold(self, csv_log, store):
        ingest_statistics(csv_log, store=store)
        self.append_rows(csv_log, ["case-0,act-5,99.0"])  # continues a stored case
        result = ingest_statistics(csv_log, store=store)
        assert result.mode in ("streamed", "sharded")
        assert result.statistics == batch(csv_log)

    def test_append_then_hit(self, csv_log, store):
        ingest_statistics(csv_log, store=store)
        self.append_rows(csv_log, ["case-new-1,act-0,0.0"])
        appended = ingest_statistics(csv_log, store=store)
        assert appended.mode == "store-append"
        again = ingest_statistics(csv_log, store=store)
        assert again.mode == "store"
        assert again.statistics == appended.statistics

    def test_repeated_appends_stack(self, csv_log, store):
        ingest_statistics(csv_log, store=store)
        for generation in range(3):
            self.append_rows(csv_log, [f"case-gen-{generation},act-1,0.0"])
            result = ingest_statistics(csv_log, store=store)
            assert result.mode == "store-append"
            assert result.statistics == batch(csv_log)

    def test_file_without_trailing_newline_skips_bookkeeping(self, tmp_path, store):
        path = tmp_path / "open.csv"
        path.write_text("case_id,activity,timestamp\nc0,a,1.0")  # no final newline
        first = ingest_statistics(path, store=store)
        assert first.mode == "streamed"
        with open(path, "a") as handle:
            handle.write(",b,2.0\nc1,c,3.0\n")  # finishes the torn row
        result = ingest_statistics(path, store=store)
        assert result.mode in ("streamed", "sharded")  # never the append path
        assert result.statistics == batch(path)


class TestStoreCorruptionDegrades:
    def test_garbage_database_still_yields_right_answer(self, csv_log, tmp_path):
        db = tmp_path / "cache" / "store.db"
        db.parent.mkdir(parents=True)
        db.write_bytes(b"not a database")
        store = LogStore(db)
        try:
            result = ingest_statistics(csv_log, store=store)
            assert result.statistics == batch(csv_log)
            warm = ingest_statistics(csv_log, store=store)
            assert warm.mode == "store"
        finally:
            store.close()


class TestIngestGraph:
    def test_graph_matches_batch_graph(self, csv_log):
        graph, result = ingest_graph(csv_log, min_frequency=0.2)
        expected = DependencyGraph.from_log(
            read_csv(csv_log, name="events"), min_frequency=0.2
        )
        assert graph.nodes == expected.nodes
        assert graph.real_edges == expected.real_edges
        assert result.mode == "streamed"

    def test_graph_memoized_per_threshold(self, csv_log, store):
        graph_cold, _ = ingest_graph(csv_log, min_frequency=0.1, store=store)
        hits_before = store.hits
        graph_warm, result = ingest_graph(csv_log, min_frequency=0.1, store=store)
        assert result.mode == "store"
        assert store.hits >= hits_before + 2  # counts row AND graph row
        assert graph_warm.real_edges == graph_cold.real_edges
        _, other = ingest_graph(csv_log, min_frequency=0.9, store=store)
        assert other.mode == "store"  # counts hit; graph was built fresh


class TestXesAppendFastPath:
    @pytest.fixture()
    def xes_log(self, csv_log, tmp_path):
        log = read_csv(csv_log, name="handover")
        path = tmp_path / "handover.xes"
        write_xes(log, path)
        return path

    def grow_xes(self, path, traces):
        """Insert new <trace> elements before </log>, prefix untouched."""
        data = path.read_bytes()
        offset = data.rfind(b"</log>")
        assert offset > 0
        chunk = b""
        for case_id, activities in traces:
            chunk += (
                f'  <trace><string key="concept:name" value="{case_id}"/>'
            ).encode()
            for activity in activities:
                chunk += (
                    f'<event><string key="concept:name" '
                    f'value="{activity}"/></event>'
                ).encode()
            chunk += b"</trace>\n"
        path.write_bytes(data[:offset] + chunk + data[offset:])

    def test_disjoint_append_merges_tail(self, xes_log, store):
        ingest_statistics(xes_log, store=store)
        self.grow_xes(
            xes_log,
            [("case-new-1", ["act-0", "act-1"]), ("case-new-2", ["act-2"])],
        )
        result = ingest_statistics(xes_log, store=store)
        assert result.mode == "store-append"
        assert result.statistics == batch(xes_log)

    def test_append_report_covers_only_tail(self, xes_log, store):
        ingest_statistics(xes_log, store=store)
        self.grow_xes(xes_log, [("case-new-1", ["act-0"])])
        report = IngestionReport(mode="raise")
        result = ingest_statistics(xes_log, store=store, report=report)
        assert result.mode == "store-append"
        assert report.events_loaded == 1

    def test_overlapping_case_falls_back_cold(self, xes_log, store):
        ingest_statistics(xes_log, store=store)
        self.grow_xes(xes_log, [("case-0", ["act-5"])])  # a stored case
        result = ingest_statistics(xes_log, store=store)
        assert result.mode in ("streamed", "sharded")
        assert result.statistics == batch(xes_log)

    def test_append_then_hit(self, xes_log, store):
        ingest_statistics(xes_log, store=store)
        self.grow_xes(xes_log, [("case-new-1", ["act-0"])])
        appended = ingest_statistics(xes_log, store=store)
        assert appended.mode == "store-append"
        again = ingest_statistics(xes_log, store=store)
        assert again.mode == "store"
        assert again.statistics == appended.statistics

    def test_repeated_appends_stack(self, xes_log, store):
        ingest_statistics(xes_log, store=store)
        for generation in range(3):
            self.grow_xes(xes_log, [(f"case-gen-{generation}", ["act-1"])])
            result = ingest_statistics(xes_log, store=store)
            assert result.mode == "store-append"
            assert result.statistics == batch(xes_log)

    def test_changed_prefix_invalidates(self, xes_log, store):
        ingest_statistics(xes_log, store=store)
        data = xes_log.read_bytes()
        # Rewrite an existing activity in place: same size, new bytes —
        # the prefix digest must force a cold parse.
        xes_log.write_bytes(data.replace(b'value="act-0"', b'value="act-9"', 1))
        result = ingest_statistics(xes_log, store=store)
        assert result.mode in ("streamed", "sharded")
        assert result.statistics == batch(xes_log)

    def test_append_records_previous_counts_key(self, xes_log, store):
        first = ingest_statistics(xes_log, store=store)
        self.grow_xes(xes_log, [("case-new-1", ["act-0"])])
        result = ingest_statistics(xes_log, store=store)
        assert result.mode == "store-append"
        assert result.previous_counts_key == first.counts_key
        assert result.counts_key != first.counts_key
