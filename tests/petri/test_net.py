"""Tests for the Petri-net substrate: token game and structure checks."""

import pytest

from repro.exceptions import SynthesisError
from repro.petri.net import Marking, PetriNet, Transition


@pytest.fixture()
def simple_net() -> PetriNet:
    """p_in -> a -> p_mid -> b -> p_out"""
    net = PetriNet(name="simple")
    for place in ("p_in", "p_mid", "p_out"):
        net.add_place(place)
    net.add_transition("a", label="A")
    net.add_transition("b", label="B")
    net.add_arc("p_in", "a")
    net.add_arc("a", "p_mid")
    net.add_arc("p_mid", "b")
    net.add_arc("b", "p_out")
    return net


class TestMarking:
    def test_from_iterable(self):
        marking = Marking(["p", "p", "q"])
        assert marking["p"] == 2
        assert marking["q"] == 1
        assert marking["absent"] == 0

    def test_immutable_operations(self):
        marking = Marking(["p"])
        added = marking.add(["q"])
        assert marking["q"] == 0
        assert added["q"] == 1

    def test_remove_missing_token(self):
        with pytest.raises(SynthesisError):
            Marking(["p"]).remove(["q"])

    def test_equality_and_hash(self):
        assert Marking(["p", "q"]) == Marking(["q", "p"])
        assert hash(Marking(["p"])) == hash(Marking({"p": 1}))

    def test_negative_counts_rejected(self):
        with pytest.raises(SynthesisError):
            Marking({"p": -1})

    def test_total(self):
        assert Marking(["p", "p", "q"]).total() == 3


class TestStructure:
    def test_pre_and_post_sets(self, simple_net):
        assert simple_net.preset("a") == frozenset({"p_in"})
        assert simple_net.postset("a") == frozenset({"p_mid"})
        assert simple_net.place_postset("p_mid") == frozenset({"b"})

    def test_source_and_sink(self, simple_net):
        assert simple_net.source_places() == {"p_in"}
        assert simple_net.sink_places() == {"p_out"}
        assert simple_net.is_workflow_net()

    def test_invalid_arc(self, simple_net):
        with pytest.raises(SynthesisError):
            simple_net.add_arc("p_in", "p_mid")  # place to place
        with pytest.raises(SynthesisError):
            simple_net.add_arc("a", "b")  # transition to transition

    def test_duplicate_transition(self, simple_net):
        with pytest.raises(SynthesisError):
            simple_net.add_transition("a")

    def test_silent_flag(self):
        assert Transition("t").is_silent
        assert not Transition("t", label="X").is_silent


class TestTokenGame:
    def test_enabled_at_initial(self, simple_net):
        marking = simple_net.initial_marking()
        assert simple_net.enabled(marking) == ["a"]

    def test_fire_sequence(self, simple_net):
        marking = simple_net.initial_marking()
        marking = simple_net.fire(marking, "a")
        assert marking == Marking(["p_mid"])
        marking = simple_net.fire(marking, "b")
        assert marking == simple_net.final_marking()

    def test_fire_disabled_rejected(self, simple_net):
        with pytest.raises(SynthesisError):
            simple_net.fire(simple_net.initial_marking(), "b")

    def test_and_split_join(self):
        net = PetriNet()
        for place in ("i", "x1", "x2", "y1", "y2", "o"):
            net.add_place(place)
        net.add_transition("split")
        net.add_transition("join")
        net.add_transition("u", label="U")
        net.add_transition("v", label="V")
        for arc in [("i", "split"), ("split", "x1"), ("split", "x2"),
                    ("x1", "u"), ("u", "y1"), ("x2", "v"), ("v", "y2"),
                    ("y1", "join"), ("y2", "join"), ("join", "o")]:
            net.add_arc(*arc)
        marking = net.fire(net.initial_marking(), "split")
        assert sorted(net.enabled(marking)) == ["u", "v"]
        marking = net.fire(net.fire(marking, "u"), "v")
        assert net.enabled(marking) == ["join"]
        assert net.fire(marking, "join") == net.final_marking()
