"""Tests for the process-tree -> workflow-net conversion."""

import random

import pytest

from repro.petri.from_tree import tree_to_petri
from repro.petri.playout import play_out_net
from repro.synthesis.generator import random_process_tree
from repro.synthesis.playout import play_out
from repro.synthesis.process_tree import (
    Choice,
    Leaf,
    Loop,
    Parallel,
    Sequence,
    Silent,
)


class TestConstruction:
    @pytest.mark.parametrize(
        "tree",
        [
            Leaf("a"),
            Sequence([Leaf("a"), Leaf("b")]),
            Choice([Leaf("a"), Leaf("b")]),
            Parallel([Leaf("a"), Leaf("b")]),
            Loop(Leaf("a"), Leaf("r")),
            Choice([Leaf("a"), Silent()]),
            Sequence([Leaf("a"), Parallel([Leaf("b"), Choice([Leaf("c"), Leaf("d")])])]),
        ],
        ids=lambda t: t.describe(),
    )
    def test_always_a_workflow_net(self, tree):
        net = tree_to_petri(tree)
        assert net.is_workflow_net()

    def test_labels_cover_activities(self):
        tree = Sequence([Leaf("a"), Choice([Leaf("b"), Leaf("c")])])
        net = tree_to_petri(tree)
        labels = {t.label for t in net.transitions.values() if t.label}
        assert labels == {"a", "b", "c"}

    def test_duplicate_labels_in_choice_branches(self):
        # Two leaves with the same activity in different branches must not
        # collide on transition names.  (Trees forbid duplicates within one
        # operator, so build two single-activity trees and merge by hand.)
        tree = Choice([Sequence([Leaf("a"), Leaf("b")]), Leaf("c")])
        net = tree_to_petri(tree)
        assert net.is_workflow_net()

    def test_random_trees_convert(self):
        rng = random.Random(3)
        for seed in range(5):
            tree = random_process_tree(
                [f"a{i}" for i in range(10)], random.Random(seed)
            )
            net = tree_to_petri(tree)
            assert net.is_workflow_net(), tree.describe()


class TestLanguageEquivalence:
    """The net's visible traces must match the tree's semantics."""

    def test_variant_sets_agree_on_block_structured_tree(self):
        tree = Sequence(
            [Leaf("a"), Parallel([Leaf("b"), Leaf("c")]), Choice([Leaf("d"), Leaf("e")])]
        )
        net = tree_to_petri(tree)
        rng = random.Random(7)
        net_variants = {
            tuple(trace.activities) for trace in play_out_net(net, 200, rng)
        }
        tree_variants = {
            tuple(play_out(tree, 1, random.Random(seed)).traces[0].activities)
            for seed in range(200)
        }
        assert net_variants == tree_variants

    def test_loop_language_contains_tree_language(self):
        # The net loop is unbounded; the tree's bounded repetitions must be
        # a subset of what the net can produce.
        tree = Loop(Leaf("x"), Leaf("r"), redo_probability=0.6, max_repeats=2)
        net = tree_to_petri(tree)
        net_variants = {
            tuple(trace.activities)
            for trace in play_out_net(net, 300, random.Random(1))
        }
        tree_variants = {
            tuple(tree.sample(random.Random(seed))) for seed in range(300)
        }
        assert tree_variants <= net_variants
