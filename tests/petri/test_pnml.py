"""PNML round-trip tests."""

import io
import random

import pytest

from repro.exceptions import LogFormatError
from repro.petri.from_tree import tree_to_petri
from repro.petri.playout import play_out_net
from repro.petri.pnml import read_pnml, write_pnml
from repro.synthesis.generator import random_process_tree
from repro.synthesis.process_tree import Choice, Leaf, Parallel, Sequence


def roundtrip(net):
    buffer = io.BytesIO()
    write_pnml(net, buffer)
    buffer.seek(0)
    return read_pnml(buffer)


class TestRoundTrip:
    def test_structure_preserved(self):
        tree = Sequence([Leaf("a"), Parallel([Leaf("b"), Leaf("c")])])
        net = tree_to_petri(tree)
        restored = roundtrip(net)
        assert restored.places == net.places
        assert set(restored.transitions) == set(net.transitions)
        for name in net.transitions:
            assert restored.preset(name) == net.preset(name)
            assert restored.postset(name) == net.postset(name)

    def test_silent_transitions_survive(self):
        tree = Choice([Leaf("a"), Leaf("b")])
        net = tree_to_petri(Parallel([tree, Leaf("c")]))
        restored = roundtrip(net)
        for name, transition in net.transitions.items():
            assert restored.transitions[name].label == transition.label

    def test_behaviour_preserved(self):
        rng = random.Random(4)
        tree = random_process_tree([f"a{i}" for i in range(6)], rng)
        net = tree_to_petri(tree)
        restored = roundtrip(net)
        original_variants = {
            tuple(t.activities) for t in play_out_net(net, 100, random.Random(9))
        }
        restored_variants = {
            tuple(t.activities) for t in play_out_net(restored, 100, random.Random(9))
        }
        assert original_variants == restored_variants

    def test_file_roundtrip(self, tmp_path):
        net = tree_to_petri(Leaf("solo"))
        path = tmp_path / "net.pnml"
        write_pnml(net, path)
        assert read_pnml(path).places == net.places


class TestErrors:
    def test_malformed(self):
        with pytest.raises(LogFormatError):
            read_pnml(io.BytesIO(b"<pnml><net>"))

    def test_wrong_root(self):
        with pytest.raises(LogFormatError):
            read_pnml(io.BytesIO(b"<notpnml/>"))

    def test_missing_net(self):
        with pytest.raises(LogFormatError):
            read_pnml(io.BytesIO(b"<pnml></pnml>"))

    def test_arc_without_endpoints(self):
        document = (
            b'<pnml><net id="n"><page id="p0">'
            b'<place id="p1"/><transition id="t1"/><arc id="a1" source="p1"/>'
            b"</page></net></pnml>"
        )
        with pytest.raises(LogFormatError):
            read_pnml(io.BytesIO(document))
