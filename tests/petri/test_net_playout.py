"""Tests for Petri-net playout."""

import random

import pytest

from repro.exceptions import SynthesisError
from repro.petri.from_tree import tree_to_petri
from repro.petri.net import PetriNet
from repro.petri.playout import play_out_net, sample_trace
from repro.synthesis.process_tree import Choice, Leaf, Sequence, Silent


class TestSampleTrace:
    def test_visible_labels_only(self):
        tree = Sequence([Leaf("a"), Silent(), Leaf("b")])
        net = tree_to_petri(tree)
        assert sample_trace(net, random.Random(0)) == ["a", "b"]

    def test_deadlock_detected(self):
        net = PetriNet()
        net.add_place("i")
        net.add_place("trap")
        net.add_place("o")
        net.add_transition("t", label="T")
        net.add_arc("i", "t")
        net.add_arc("t", "trap")  # token stuck: trap feeds nothing
        with pytest.raises(SynthesisError):
            sample_trace(net, random.Random(0))

    def test_livelock_guard(self):
        # x spins forever between two places; the final place is unreachable.
        net = PetriNet()
        for place in ("i", "p", "o"):
            net.add_place(place)
        net.add_transition("go", label="G")
        net.add_transition("spin", label="S")
        net.add_arc("i", "go")
        net.add_arc("go", "p")
        net.add_arc("p", "spin")
        net.add_arc("spin", "p")
        with pytest.raises(SynthesisError):
            sample_trace(net, random.Random(0), max_steps=50)


class TestPlayOutNet:
    def test_trace_count_and_case_ids(self):
        net = tree_to_petri(Sequence([Leaf("a"), Leaf("b")]))
        log = play_out_net(net, 7, random.Random(0), case_prefix="k")
        assert len(log) == 7
        assert log.traces[0].case_id == "k-0"

    def test_silent_only_runs_redrawn(self):
        net = tree_to_petri(Choice([Leaf("a"), Silent()]))
        log = play_out_net(net, 30, random.Random(3))
        assert all(len(trace) >= 1 for trace in log)

    def test_always_silent_net_rejected(self):
        net = tree_to_petri(Silent())
        with pytest.raises(SynthesisError):
            play_out_net(net, 3, random.Random(0))

    def test_num_traces_validated(self):
        net = tree_to_petri(Leaf("a"))
        with pytest.raises(SynthesisError):
            play_out_net(net, 0, random.Random(0))

    def test_matching_works_on_petri_generated_logs(self):
        """End-to-end: BeehiveZ-style net playout feeds the matcher."""
        from repro.matchers import EMSMatcher

        tree = Sequence([Leaf("a"), Choice([Leaf("b"), Leaf("c")]), Leaf("d")])
        net = tree_to_petri(tree)
        log_first = play_out_net(net, 60, random.Random(1), name="n1")
        log_second = play_out_net(net, 60, random.Random(2), name="n2").relabel(
            {"a": "w", "b": "x", "c": "y", "d": "z"}
        )
        outcome = EMSMatcher().match(log_first, log_second)
        found = {(min(c.left), min(c.right)) for c in outcome.correspondences}
        assert ("a", "w") in found
        assert ("d", "z") in found
