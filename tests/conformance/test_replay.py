"""Tests for token-based replay conformance."""

import random

import pytest

from repro.conformance.replay import replay_log
from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.petri.from_tree import tree_to_petri
from repro.petri.net import PetriNet
from repro.synthesis.process_tree import Choice, Leaf, Parallel, Sequence


@pytest.fixture()
def chain_net() -> PetriNet:
    return tree_to_petri(Sequence([Leaf("a"), Leaf("b"), Leaf("c")]))


class TestPerfectFit:
    def test_exact_log_fits(self, chain_net):
        log = EventLog([["a", "b", "c"]] * 5)
        result = replay_log(chain_net, log)
        assert result.fitness == pytest.approx(1.0)
        assert result.trace_fitness == 1.0
        assert result.missing == 0
        assert result.remaining == 0

    def test_parallel_interleavings_fit(self):
        net = tree_to_petri(Sequence([Leaf("a"), Parallel([Leaf("b"), Leaf("c")])]))
        log = EventLog([["a", "b", "c"], ["a", "c", "b"]] * 3)
        result = replay_log(net, log)
        assert result.fitness == pytest.approx(1.0)

    def test_choice_branches_fit(self):
        net = tree_to_petri(Choice([Leaf("a"), Leaf("b")]))
        log = EventLog([["a"], ["b"]] * 4)
        assert replay_log(net, log).fitness == pytest.approx(1.0)

    def test_playout_always_fits_its_net(self):
        from repro.petri.playout import play_out_net
        from repro.synthesis.generator import ACYCLIC_PROFILE, random_process_tree

        rng = random.Random(5)
        tree = random_process_tree([f"a{i}" for i in range(8)], rng, ACYCLIC_PROFILE)
        net = tree_to_petri(tree)
        log = play_out_net(net, 60, rng)
        result = replay_log(net, log)
        assert result.fitness == pytest.approx(1.0)
        assert result.trace_fitness == 1.0


class TestMisfit:
    def test_wrong_order_penalized(self, chain_net):
        result = replay_log(chain_net, EventLog([["b", "a", "c"]] * 3))
        assert result.missing > 0
        assert result.fitness < 1.0

    def test_skipped_event_penalized(self, chain_net):
        result = replay_log(chain_net, EventLog([["a", "c"]] * 3))
        assert result.fitness < 1.0

    def test_unknown_activity_penalized(self, chain_net):
        result = replay_log(chain_net, EventLog([["a", "zzz", "b", "c"]] * 3))
        assert result.missing > 0

    def test_mixed_log_trace_fitness(self, chain_net):
        log = EventLog([["a", "b", "c"]] * 3 + [["c", "b", "a"]])
        result = replay_log(chain_net, log)
        assert result.fitting_traces == 3
        assert result.trace_fitness == pytest.approx(0.75)

    def test_fitness_monotone_in_noise(self, chain_net):
        clean = replay_log(chain_net, EventLog([["a", "b", "c"]] * 10))
        noisy = replay_log(
            chain_net, EventLog([["a", "b", "c"]] * 5 + [["c", "a"]] * 5)
        )
        assert clean.fitness > noisy.fitness


class TestValidation:
    def test_requires_workflow_net(self):
        net = PetriNet()
        net.add_place("p")
        net.add_place("q")
        net.add_transition("t", label="T")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        net.add_place("floating")  # second source place
        with pytest.raises(SynthesisError):
            replay_log(net, EventLog([["T"]]))
