"""Shared fixtures: the paper's running example and small helpers."""

from __future__ import annotations

import pytest

from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.synthesis.examples import figure1_logs


@pytest.fixture()
def fig1_logs() -> tuple[EventLog, EventLog]:
    """The Figure 1 logs (letter names): L1 = A..F, L2 = 1..6."""
    log_first, log_second, _ = figure1_logs()
    return log_first, log_second


@pytest.fixture()
def fig1_truth():
    return figure1_logs()[2]


@pytest.fixture()
def fig1_graphs(fig1_logs) -> tuple[DependencyGraph, DependencyGraph]:
    log_first, log_second = fig1_logs
    return DependencyGraph.from_log(log_first), DependencyGraph.from_log(log_second)


@pytest.fixture()
def chain_logs() -> tuple[EventLog, EventLog]:
    """Two identical simple chains: the easiest possible matching task."""
    return (
        EventLog([list("abcd")] * 10, name="chain-1"),
        EventLog([list("wxyz")] * 10, name="chain-2"),
    )
