"""Small-surface tests: reprs, accessors and convenience properties.

These are the odds and ends the bigger suites route around — kept
honest here so the printable/diagnostic surface does not rot.
"""

import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.logs.streaming import OnlineStatistics
from repro.petri.net import Marking


class TestReprs:
    def test_event_log_repr(self):
        log = EventLog([["a", "b"]], name="demo")
        assert "demo" in repr(log)
        assert "traces=1" in repr(log)

    def test_trace_repr_includes_case(self):
        from repro.logs.events import Trace

        assert "case_id='k'" in repr(Trace(["a"], case_id="k"))

    def test_graph_repr(self, fig1_graphs):
        assert "nodes=6" in repr(fig1_graphs[0])

    def test_marking_repr_sorted(self):
        assert repr(Marking(["b", "a"])) == "Marking({a:1, b:1})"

    def test_online_statistics_repr(self):
        online = OnlineStatistics()
        online.add_trace(["a"])
        rendered = repr(online)
        assert "traces=1" in rendered
        assert "activities=1" in rendered

    def test_matcher_reprs(self):
        from repro.baselines import BHVMatcher, GEDMatcher

        assert "GED" in repr(GEDMatcher())
        assert "BHV" in repr(BHVMatcher())

    def test_similarity_reprs(self):
        from repro.similarity import (
            JaroWinklerSimilarity,
            MongeElkanSimilarity,
            OpaqueSimilarity,
            QGramCosineSimilarity,
        )

        assert repr(OpaqueSimilarity()) == "OpaqueSimilarity()"
        assert "q=3" in repr(QGramCosineSimilarity())
        assert "prefix_scale" in repr(JaroWinklerSimilarity())
        assert "MongeElkan" in repr(MongeElkanSimilarity())


class TestConvenienceAccessors:
    def test_ems_result_average(self, fig1_graphs):
        result = EMSEngine(EMSConfig()).similarity(*fig1_graphs)
        assert result.average == pytest.approx(result.matrix.average())

    def test_member_map_is_copy(self, fig1_graphs):
        members = fig1_graphs[0].member_map()
        members["A"] = frozenset({"tampered"})
        assert fig1_graphs[0].members("A") == frozenset({"A"})

    def test_log_pair_activity_count(self):
        from repro.matching.evaluation import Correspondence
        from repro.synthesis.corpus import LogPair

        pair = LogPair(
            "p", "area", "DS-B",
            EventLog([["a", "b"]]),
            EventLog([["x", "y", "z"]]),
            (Correspondence.one_to_one("a", "x"),),
        )
        assert pair.activity_count == 3

    def test_aggregate_finished_all(self):
        from repro.experiments.harness import Aggregate

        clean = Aggregate("m", 1.0, 1.0, 1.0, 0.1, 3, 0)
        dirty = Aggregate("m", 1.0, 1.0, 1.0, 0.1, 3, 1)
        assert clean.finished_all
        assert not dirty.finished_all

    def test_replay_result_empty_edge_cases(self):
        from repro.conformance.replay import ReplayResult

        empty = ReplayResult(0, 0, 0, 0, 0, 0)
        assert empty.fitness == pytest.approx(1.0)
        assert empty.trace_fitness == 0.0

    def test_correspondence_repr(self):
        from repro.matching.evaluation import Correspondence

        rendered = repr(Correspondence(frozenset({"c", "d"}), frozenset({"4"})))
        assert "c+d" in rendered.lower()
        assert "4" in rendered


class TestDefensiveValidation:
    def test_matrix_repr(self, fig1_graphs):
        result = EMSEngine(EMSConfig()).similarity(*fig1_graphs)
        assert "6 x 6" in repr(result.matrix)

    def test_dependency_graph_average_degree_positive(self, fig1_graphs):
        assert fig1_graphs[0].average_degree() > 2.0  # artificial edges alone give 2

    def test_estimation_report_str(self, fig1_graphs):
        from repro.core.analysis import estimation_error

        (report,) = estimation_error(*fig1_graphs, budgets=(2,))
        assert "rmse" in str(report)

    def test_threshold_calibration_str(self):
        import numpy as np

        from repro.core.matrix import SimilarityMatrix
        from repro.matching.calibration import calibrate_threshold
        from repro.matching.evaluation import Correspondence

        matrix = SimilarityMatrix(["a"], ["x"], np.array([[0.9]]))
        calibration = calibrate_threshold(
            [(matrix, [Correspondence.one_to_one("a", "x")])]
        )
        assert "threshold" in str(calibration)
