"""Tests for longest-distance levels l(v) (Proposition 2 machinery)."""

import math

import pytest

from repro.graph.dependency import ARTIFICIAL, DependencyGraph
from repro.graph.levels import longest_distances, max_finite_level
from repro.logs.log import EventLog


def graph_of(*traces: str) -> DependencyGraph:
    return DependencyGraph.from_log(EventLog([list(t) for t in traces]))


class TestAcyclic:
    def test_chain_levels(self):
        levels = longest_distances(graph_of("abc"))
        assert levels[ARTIFICIAL] == 0
        assert levels["a"] == 1
        assert levels["b"] == 2
        assert levels["c"] == 3

    def test_figure1_levels(self, fig1_graphs):
        levels = longest_distances(fig1_graphs[0])
        # Example 5: l(A) = 1, and S(C, *) converges at iteration 2.
        assert levels["A"] == 1
        assert levels["B"] == 1
        assert levels["C"] == 2
        assert levels["D"] == 3
        # E and F are concurrent: E -> F and F -> E form a real cycle.
        assert math.isinf(levels["E"])
        assert math.isinf(levels["F"])

    def test_longest_not_shortest(self):
        # a -> c directly but also a -> b -> c: l(c) must be 3.
        levels = longest_distances(graph_of("abc", "ac"))
        assert levels["c"] == 3


class TestCycles:
    def test_self_loop_is_infinite(self):
        levels = longest_distances(graph_of("aab"))
        assert math.isinf(levels["a"])
        assert math.isinf(levels["b"])  # downstream of the loop

    def test_cycle_members_infinite(self):
        levels = longest_distances(graph_of("abab"))
        assert math.isinf(levels["a"])
        assert math.isinf(levels["b"])

    def test_node_upstream_of_cycle_is_finite(self):
        levels = longest_distances(graph_of("xbcbcy"))
        assert levels["x"] == 1
        assert math.isinf(levels["b"])
        assert math.isinf(levels["y"])  # downstream of the b-c cycle

    def test_artificial_cycle_does_not_count(self):
        # v -> v^X -> v must NOT make levels infinite (Section 3.4 intent).
        levels = longest_distances(graph_of("ab"))
        assert levels["a"] == 1
        assert levels["b"] == 2


class TestMaxFiniteLevel:
    def test_finite(self):
        assert max_finite_level(longest_distances(graph_of("abc"))) == 3

    def test_infinite_when_cyclic(self):
        assert math.isinf(max_finite_level(longest_distances(graph_of("abab"))))

    def test_ignores_artificial(self):
        levels = longest_distances(graph_of("a"))
        assert max_finite_level(levels) == 1
