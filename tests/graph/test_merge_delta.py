"""Differential tests: delta count patching vs the full log rewrite.

The delta path (`merge_counts` + `merged_graph_from_delta` +
`apply_delta_to_log`) must reproduce the ground-truth rewrite path
(`merge_run_in_log` + `DependencyGraph.from_log`) bit for bit — counts,
frequencies, member maps, logs, graphs and Proposition-2 levels.
"""

import random as random_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.dependency import ARTIFICIAL, DependencyGraph
from repro.graph.levels import longest_distances, patched_longest_distances
from repro.graph.merge import (
    LogCounts,
    TraceIndex,
    apply_delta_to_log,
    merge_counts,
    merge_run_in_log,
    merged_graph_from_delta,
    merged_member_map,
)
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_log(seed: int, alphabet: str = "abcdefg") -> EventLog:
    rng = random_module.Random(seed)
    traces = []
    for _ in range(rng.randint(2, 10)):
        length = rng.randint(1, 8)
        traces.append([rng.choice(alphabet) for _ in range(length)])
    return EventLog(traces, name=f"rand-{seed}")


def random_run(seed: int, log: EventLog) -> tuple[str, ...]:
    rng = random_module.Random(seed ^ 0x5EED)
    # Prefer a run that actually occurs: pick a random window of a trace.
    for _ in range(10):
        trace = rng.choice(log.traces)
        if len(trace) < 2:
            continue
        start = rng.randrange(len(trace) - 1)
        width = rng.randint(2, min(3, len(trace) - start))
        run = trace.activities[start:start + width]
        if len(set(run)) == len(run):
            return run
    return ("a", "b")  # may or may not occur — both paths must agree anyway


def assert_graphs_identical(expected: DependencyGraph, actual: DependencyGraph):
    assert expected.nodes == actual.nodes
    for node in expected.nodes:
        assert expected.frequency(node) == actual.frequency(node)
        assert expected.members(node) == actual.members(node)
        assert expected.predecessors(node) == actual.predecessors(node)
        assert expected.successors(node) == actual.successors(node)
    assert expected.real_edges == actual.real_edges
    assert expected.levels() == actual.levels()
    assert expected.reversed().levels() == actual.reversed().levels()


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_merge_counts_matches_recount(seed, run_seed):
    log = random_log(seed)
    run = random_run(run_seed, log)
    counts = LogCounts.from_log(log)
    index = TraceIndex(log)
    delta = merge_counts(counts, index, run)

    rewritten, _ = merge_run_in_log(log, run)
    expected = LogCounts.from_log(rewritten)
    assert delta.counts.trace_count == expected.trace_count
    assert delta.counts.activity == expected.activity
    assert delta.counts.pair == expected.pair
    # The patched statistics divide the same integers: bit-identical floats.
    assert delta.counts.statistics() == compute_statistics(rewritten)
    # The delta log swap reproduces the rewrite.
    assert apply_delta_to_log(log, delta) == rewritten
    # The original counts were not mutated.
    assert counts.activity == LogCounts.from_log(log).activity
    assert counts.pair == LogCounts.from_log(log).pair


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_delta_graph_matches_full_rebuild(seed, run_seed):
    log = random_log(seed)
    run = random_run(run_seed, log)
    parent_members = {a: frozenset({a}) for a in log.activities()}
    parent = DependencyGraph.from_log(log, members=parent_members)

    delta = merge_counts(LogCounts.from_log(log), TraceIndex(log), run)
    members = merged_member_map(sorted(delta.counts.activity), run, parent_members)
    actual = merged_graph_from_delta(parent, delta, 0.0, members)

    rewritten, expected_members = merge_run_in_log(log, run, parent_members)
    expected = DependencyGraph.from_log(rewritten, members=expected_members)
    assert members == expected_members
    assert_graphs_identical(expected, actual)


@given(seeds, seeds, st.sampled_from([0.0, 0.2, 0.5]))
@settings(max_examples=30, deadline=None)
def test_delta_graph_matches_under_min_frequency(seed, run_seed, min_frequency):
    log = random_log(seed)
    run = random_run(run_seed, log)
    parent_members = {a: frozenset({a}) for a in log.activities()}
    parent = DependencyGraph.from_log(
        log, min_frequency=min_frequency, members=parent_members
    )
    delta = merge_counts(LogCounts.from_log(log), TraceIndex(log), run)
    members = merged_member_map(sorted(delta.counts.activity), run, parent_members)
    actual = merged_graph_from_delta(parent, delta, min_frequency, members)

    rewritten, expected_members = merge_run_in_log(log, run, parent_members)
    expected = DependencyGraph.from_log(
        rewritten, min_frequency=min_frequency, members=expected_members
    )
    assert_graphs_identical(expected, actual)


@given(seeds, seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_trace_index_apply_stays_consistent(seed, run_seed, second_seed):
    """After applying an accepted merge, a second delta still matches."""
    log = random_log(seed)
    run = random_run(run_seed, log)
    counts = LogCounts.from_log(log)
    index = TraceIndex(log)
    delta = merge_counts(counts, index, run)
    merged_log = apply_delta_to_log(log, delta)
    index.apply(delta)

    second_run = random_run(second_seed, merged_log)
    if len(set(second_run)) != len(second_run) or len(second_run) < 2:
        return
    second = merge_counts(delta.counts, index, second_run)
    rewritten, _ = merge_run_in_log(merged_log, second_run)
    assert second.counts.activity == LogCounts.from_log(rewritten).activity
    assert second.counts.pair == LogCounts.from_log(rewritten).pair


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_patched_levels_match_full_recompute(seed, run_seed):
    log = random_log(seed)
    run = random_run(run_seed, log)
    parent = DependencyGraph.from_log(log)
    delta = merge_counts(LogCounts.from_log(log), TraceIndex(log), run)
    members = merged_member_map(sorted(delta.counts.activity), run, None)
    merged = DependencyGraph.from_statistics(
        delta.counts.statistics(), name=log.name, members=members
    )
    in_changed, out_changed = delta.changed_nodes(0.0)
    assert patched_longest_distances(
        merged, longest_distances(parent), in_changed
    ) == longest_distances(merged)
    assert patched_longest_distances(
        merged.reversed(), longest_distances(parent.reversed()), out_changed
    ) == longest_distances(merged.reversed())


def test_patched_levels_empty_changed_set_passthrough():
    log = EventLog([["a", "b", "c"], ["a", "c"]])
    graph = DependencyGraph.from_log(log)
    levels = longest_distances(graph)
    assert patched_longest_distances(graph, levels, set()) == levels


def test_patched_levels_rejects_unknown_new_node():
    log = EventLog([["a", "b"]])
    graph = DependencyGraph.from_log(log)
    with pytest.raises(GraphError):
        patched_longest_distances(graph, {ARTIFICIAL: 0.0}, set())


def test_merge_counts_validates_run():
    log = EventLog([["a", "b", "c"]])
    counts, index = LogCounts.from_log(log), TraceIndex(log)
    with pytest.raises(GraphError):
        merge_counts(counts, index, ("a",))
    with pytest.raises(GraphError):
        merge_counts(counts, index, ("a", "a"))


def test_merge_counts_run_absent_is_identity():
    log = EventLog([["a", "b", "c"], ["c", "a"]])
    delta = merge_counts(LogCounts.from_log(log), TraceIndex(log), ("b", "a"))
    assert delta.affected == ()
    assert delta.counts.activity == LogCounts.from_log(log).activity
    assert delta.counts.pair == LogCounts.from_log(log).pair


def test_changed_nodes_tracks_min_frequency_crossings():
    # (b, c) occurs in 1 of 2 traces; merging (a, b) removes it entirely.
    log = EventLog([["a", "b", "c"], ["a", "b"]])
    delta = merge_counts(LogCounts.from_log(log), TraceIndex(log), ("a", "b"))
    in_changed, out_changed = delta.changed_nodes(0.0)
    assert "c" in in_changed          # lost its (b, c) in-edge
    assert set(delta.run) <= in_changed and set(delta.run) <= out_changed
    assert delta.name in in_changed and delta.name in out_changed
