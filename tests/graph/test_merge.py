"""Tests for composite-event merging."""

import pytest

from repro.exceptions import GraphError
from repro.graph.merge import (
    composite_name,
    expand_members,
    merge_run_in_log,
    merge_runs_in_log,
    merged_dependency_graph,
)
from repro.logs.log import EventLog


class TestNaming:
    def test_composite_name_preserves_order(self):
        assert composite_name(("C", "D")) == "⟨C+D⟩"

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            composite_name(())

    def test_expand_members_flattens_nested(self):
        members = {"⟨a+b⟩": frozenset({"a", "b"})}
        assert expand_members(("⟨a+b⟩", "c"), members) == frozenset({"a", "b", "c"})


class TestMergeRun:
    def test_merge_rewrites_traces(self, fig1_logs):
        merged, members = merge_run_in_log(fig1_logs[0], ("C", "D"))
        assert all("C" not in trace.activities for trace in merged)
        assert members["⟨C+D⟩"] == frozenset({"C", "D"})
        assert members["A"] == frozenset({"A"})

    def test_merge_requires_two_members(self, fig1_logs):
        with pytest.raises(GraphError):
            merge_run_in_log(fig1_logs[0], ("C",))

    def test_merge_rejects_repeats(self, fig1_logs):
        with pytest.raises(GraphError):
            merge_run_in_log(fig1_logs[0], ("C", "C"))

    def test_nested_merge_unions_members(self):
        log = EventLog([["a", "b", "c"]] * 3)
        merged, members = merge_runs_in_log(log, [("a", "b"), ("⟨a+b⟩", "c")])
        assert members["⟨⟨a+b⟩+c⟩"] == frozenset({"a", "b", "c"})
        assert merged.traces[0].activities == ("⟨⟨a+b⟩+c⟩",)


class TestMergedGraph:
    def test_merged_graph_frequencies(self, fig1_logs):
        graph = merged_dependency_graph(fig1_logs[0], [("C", "D")])
        name = composite_name(("C", "D"))
        assert graph.frequency(name) == pytest.approx(1.0)
        assert graph.edge_frequency("A", name) == pytest.approx(0.4)
        assert graph.members(name) == frozenset({"C", "D"})

    def test_noncontiguous_occurrences_unmerged(self):
        log = EventLog([["a", "x", "b"], ["a", "b"]])
        merged, _ = merge_run_in_log(log, ("a", "b"))
        assert merged.traces[0].activities == ("a", "x", "b")
        assert merged.traces[1].activities == ("⟨a+b⟩",)
