"""Tests for real-edge reachability (Proposition 4 support)."""

from repro.graph.dependency import DependencyGraph
from repro.graph.reachability import real_ancestors, real_descendants
from repro.logs.log import EventLog


def graph_of(*traces: str) -> DependencyGraph:
    return DependencyGraph.from_log(EventLog([list(t) for t in traces]))


class TestDescendants:
    def test_chain(self):
        graph = graph_of("abcd")
        assert real_descendants(graph, ["b"]) == {"c", "d"}

    def test_artificial_edges_do_not_leak(self):
        # Without excluding v^X, every node would reach every other node.
        graph = graph_of("ab", "cd")
        assert real_descendants(graph, ["a"]) == {"b"}

    def test_cycle_includes_sources(self):
        graph = graph_of("abab")
        assert real_descendants(graph, ["a"]) == {"a", "b"}

    def test_multiple_sources(self):
        graph = graph_of("abc")
        assert real_descendants(graph, ["a", "b"]) == {"b", "c"}


class TestAncestors:
    def test_chain(self):
        graph = graph_of("abcd")
        assert real_ancestors(graph, ["c"]) == {"a", "b"}

    def test_is_reverse_of_descendants(self):
        graph = graph_of("abc", "adc")
        for node in graph.nodes:
            for other in graph.nodes:
                forward = other in real_descendants(graph, [node])
                backward = node in real_ancestors(graph, [other])
                assert forward == backward
