"""Tests for DOT export and graph metrics."""

import pytest

from repro.graph.dependency import DependencyGraph
from repro.graph.export import graph_metrics, to_dot
from repro.logs.log import EventLog


@pytest.fixture()
def graph() -> DependencyGraph:
    return DependencyGraph.from_log(
        EventLog([["a", "b", "c"], ["a", "c", "b"]], name="demo")
    )


class TestDot:
    def test_all_nodes_and_edges_present(self, graph):
        dot = to_dot(graph)
        for node in graph.nodes:
            assert f'"{node}"' in dot
        for source, target in graph.real_edges:
            assert f'"{source}" -> "{target}"' in dot

    def test_artificial_optional(self, graph):
        assert "vX" in to_dot(graph, include_artificial=True)
        assert "vX" not in to_dot(graph, include_artificial=False)

    def test_highlighting(self, graph):
        dot = to_dot(graph, highlight={"a": "lightblue"})
        assert 'fillcolor="lightblue"' in dot

    def test_quoting(self):
        log = EventLog([['weird "name"', "other"]])
        dot = to_dot(DependencyGraph.from_log(log))
        assert '\\"name\\"' in dot

    def test_valid_braces(self, graph):
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")


class TestMetrics:
    def test_counts(self, graph):
        metrics = graph_metrics(graph)
        assert metrics.node_count == 3
        assert metrics.edge_count == 4  # ab, bc, ac, cb

    def test_density(self, graph):
        metrics = graph_metrics(graph)
        assert metrics.density == pytest.approx(4 / 6)

    def test_reciprocity(self, graph):
        # b<->c is the only reciprocal pair: 2 of 4 edges.
        assert graph_metrics(graph).reciprocity == pytest.approx(0.5)

    def test_degrees(self, graph):
        metrics = graph_metrics(graph)
        assert metrics.max_out_degree == 2  # a -> b and a -> c
        assert metrics.mean_degree == pytest.approx(8 / 3)

    def test_single_node(self):
        metrics = graph_metrics(DependencyGraph.from_log(EventLog([["x"]])))
        assert metrics.edge_count == 0
        assert metrics.density == 0.0
        assert metrics.reciprocity == 0.0
