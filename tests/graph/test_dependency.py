"""Tests for the dependency graph (Definition 1 + artificial event)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.dependency import ARTIFICIAL, DependencyGraph
from repro.logs.log import EventLog


class TestConstruction:
    def test_from_log_figure2(self, fig1_logs):
        graph = DependencyGraph.from_log(fig1_logs[0])
        assert set(graph.nodes) == set("ABCDEF")
        assert graph.frequency("A") == pytest.approx(0.4)
        assert graph.edge_frequency("C", "D") == pytest.approx(1.0)

    def test_artificial_edges_weighted_by_node_frequency(self, fig1_graphs):
        graph = fig1_graphs[0]
        # Example 3: f(v^X, C) = 1.0 and f(v^X, A) = 0.4.
        assert graph.edge_frequency(ARTIFICIAL, "C") == pytest.approx(1.0)
        assert graph.edge_frequency(ARTIFICIAL, "A") == pytest.approx(0.4)
        assert graph.edge_frequency("A", ARTIFICIAL) == pytest.approx(0.4)

    def test_every_real_node_has_artificial_pre_and_post(self, fig1_graphs):
        graph = fig1_graphs[0]
        for node in graph.nodes:
            assert ARTIFICIAL in graph.predecessors(node)
            assert ARTIFICIAL in graph.successors(node)

    def test_rejects_reserved_node_name(self):
        with pytest.raises(GraphError):
            DependencyGraph({ARTIFICIAL: 1.0}, {})

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            DependencyGraph({}, {})

    def test_rejects_out_of_range_frequency(self):
        with pytest.raises(GraphError):
            DependencyGraph({"a": 1.5}, {})
        with pytest.raises(GraphError):
            DependencyGraph({"a": 1.0}, {("a", "a"): 0.0})

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(GraphError):
            DependencyGraph({"a": 1.0}, {("a", "b"): 0.5})


class TestAccessors:
    def test_pre_and_post_sets(self, fig1_graphs):
        graph = fig1_graphs[0]
        assert set(graph.predecessors("C")) == {"A", "B", ARTIFICIAL}
        assert set(graph.successors("C")) == {"D", ARTIFICIAL}

    def test_artificial_frequency_is_one(self, fig1_graphs):
        assert fig1_graphs[0].frequency(ARTIFICIAL) == 1.0

    def test_unknown_node_raises(self, fig1_graphs):
        with pytest.raises(GraphError):
            fig1_graphs[0].frequency("missing")
        with pytest.raises(GraphError):
            fig1_graphs[0].predecessors("missing")

    def test_missing_edge_raises(self, fig1_graphs):
        with pytest.raises(GraphError):
            fig1_graphs[0].edge_frequency("A", "F")

    def test_contains(self, fig1_graphs):
        graph = fig1_graphs[0]
        assert "A" in graph
        assert ARTIFICIAL in graph
        assert "nope" not in graph

    def test_real_edges_exclude_artificial(self, fig1_graphs):
        for edge in fig1_graphs[0].real_edges:
            assert ARTIFICIAL not in edge

    def test_members_default_to_self(self, fig1_graphs):
        assert fig1_graphs[0].members("A") == frozenset({"A"})

    def test_average_degree_counts_artificial(self):
        graph = DependencyGraph.from_log(EventLog([["a", "b"]] * 2))
        # a: pre {X}, post {b, X}; b: pre {a, X}, post {X} -> degree 3 each.
        assert graph.average_degree() == pytest.approx(3.0)


class TestTransformations:
    def test_reversed_swaps_real_edges(self, fig1_graphs):
        reversed_graph = fig1_graphs[0].reversed()
        assert reversed_graph.has_edge("D", "C")
        assert not reversed_graph.has_edge("C", "D")
        # Artificial edges survive in both directions.
        assert reversed_graph.has_edge(ARTIFICIAL, "C")
        assert reversed_graph.has_edge("C", ARTIFICIAL)

    def test_reversed_twice_is_identity(self, fig1_graphs):
        graph = fig1_graphs[0]
        assert graph.reversed().reversed().real_edges == graph.real_edges

    def test_filter_edges(self, fig1_graphs):
        graph = fig1_graphs[0]
        filtered = graph.filter_edges(0.5)
        assert not filtered.has_edge("A", "C")  # 0.4 < 0.5
        assert filtered.has_edge("C", "D")  # 1.0
        # Artificial edges always survive.
        assert filtered.has_edge(ARTIFICIAL, "A")

    def test_filter_edges_validates(self, fig1_graphs):
        with pytest.raises(GraphError):
            fig1_graphs[0].filter_edges(1.5)

    def test_min_frequency_at_build_time(self, fig1_logs):
        graph = DependencyGraph.from_log(fig1_logs[0], min_frequency=0.5)
        assert not graph.has_edge("A", "C")

    def test_restrict_nodes(self, fig1_graphs):
        sub = fig1_graphs[0].restrict_nodes(["C", "D"])
        assert set(sub.nodes) == {"C", "D"}
        assert sub.has_edge("C", "D")

    def test_restrict_nodes_unknown(self, fig1_graphs):
        with pytest.raises(GraphError):
            fig1_graphs[0].restrict_nodes(["C", "zzz"])
